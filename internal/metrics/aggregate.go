package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Aggregate accumulates service-level measurements across many concurrent
// swaps — the clearing engine's counterpart to the per-run Counters. All
// methods are safe for concurrent use.
type Aggregate struct {
	mu        sync.Mutex
	startedAt time.Time

	offersSubmitted int
	offersCleared   int
	offersRejected  int
	offersShed      int

	swapsStarted  int
	swapsFinished int
	swapsFailed   int

	inflight     int
	peakInflight int

	outcomes        map[string]int
	ordersSabotaged int
	deviations      map[string]int

	latencyCount int
	latencySum   time.Duration
	latencyMax   time.Duration
	latencyHist  Histogram
	// windowHist shadows latencyHist but is consumed (and reset) by
	// TakeLatencyWindow, giving live dashboards reset-on-read percentiles
	// over just the interval since the last read instead of since start.
	windowHist Histogram

	recovery *RecoveryStats

	reservationConflicts int

	// reverts counts commitment-model reorg reverts by chain name (empty
	// on Instant runs — the field costs nothing unless reorgs happen).
	reverts map[string]int
	// chainDeltas is the per-chain effective Δ (ticks) under a
	// commitment model, set at report time by the engine.
	chainDeltas map[string]int

	// signs is the total ed25519 signature count, set from the keyring
	// meter at snapshot time (not accumulated here).
	signs uint64

	// econ accumulates per-swap capital-lock integrals and bribery
	// extremes (see economics.go).
	econ EconomicsTotals

	// Adaptive-Δ telemetry: one point per controller decision, thinned to
	// every deltaStride-th decision so a long run's trajectory stays
	// bounded without losing its shape.
	deltaTraj   []DeltaPoint
	deltaSeen   int
	deltaStride int
}

// NewAggregate starts an aggregate; elapsed time (and therefore the /sec
// rates) count from this moment.
func NewAggregate() *Aggregate {
	return &Aggregate{
		startedAt:  time.Now(),
		outcomes:   make(map[string]int),
		deviations: make(map[string]int),
	}
}

// SetStartedAt overrides the epoch elapsed time and the /sec rates are
// measured from. A merge target built at report time (the sharded
// engine's merged report) must inherit the deployment's own start
// instant, or its elapsed collapses to the merge's duration.
func (a *Aggregate) SetStartedAt(t time.Time) {
	a.mu.Lock()
	a.startedAt = t
	a.mu.Unlock()
}

// AddSubmitted records offers entering the intake queue.
func (a *Aggregate) AddSubmitted(n int) {
	a.mu.Lock()
	a.offersSubmitted += n
	a.mu.Unlock()
}

// AddCleared records offers matched into a swap.
func (a *Aggregate) AddCleared(n int) {
	a.mu.Lock()
	a.offersCleared += n
	a.mu.Unlock()
}

// AddRejected records offers the engine refused (invalid, spent asset,
// unmatched at drain).
func (a *Aggregate) AddRejected(n int) {
	a.mu.Lock()
	a.offersRejected += n
	a.mu.Unlock()
}

// AddShed records arrivals dropped by a bounded-intake backstop before
// they ever reached the book.
func (a *Aggregate) AddShed(n int) {
	a.mu.Lock()
	a.offersShed += n
	a.mu.Unlock()
}

// AddSabotaged records orders settled in a swap that carried at least one
// injected deviating party — the adversarially exercised slice of the
// load.
func (a *Aggregate) AddSabotaged(n int) {
	a.mu.Lock()
	a.ordersSabotaged += n
	a.mu.Unlock()
}

// AddDeviation tallies one injected deviation by strategy name.
func (a *Aggregate) AddDeviation(strategy string) {
	a.mu.Lock()
	a.deviations[strategy]++
	a.mu.Unlock()
}

// AddReverted records one commitment-model reorg revert observed by a
// swap run on the named chain.
func (a *Aggregate) AddReverted(chain string) {
	a.mu.Lock()
	if a.reverts == nil {
		a.reverts = make(map[string]int)
	}
	a.reverts[chain]++
	a.mu.Unlock()
}

// SetChainDeltas records the per-chain effective Δ (ticks) for the
// report; called at snapshot time by engines running a commitment model.
func (a *Aggregate) SetChainDeltas(deltas map[string]int) {
	a.mu.Lock()
	a.chainDeltas = deltas
	a.mu.Unlock()
}

// AddReservationConflict records a clearing round deferred because another
// in-flight swap held an asset — the contention the reservation layer
// turns into waiting instead of double-spending.
func (a *Aggregate) AddReservationConflict() {
	a.mu.Lock()
	a.reservationConflicts++
	a.mu.Unlock()
}

// SwapStarted records one swap entering execution and returns the current
// in-flight count.
func (a *Aggregate) SwapStarted() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.swapsStarted++
	a.inflight++
	if a.inflight > a.peakInflight {
		a.peakInflight = a.inflight
	}
	return a.inflight
}

// SwapFinished records one swap leaving execution. failed marks runs that
// errored outright (not protocol aborts, which are counted per outcome).
func (a *Aggregate) SwapFinished(failed bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight--
	a.swapsFinished++
	if failed {
		a.swapsFailed++
	}
}

// AddOutcome tallies one order's terminal payoff class and its
// submit-to-settle latency.
func (a *Aggregate) AddOutcome(class string, latency time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.outcomes[class]++
	a.latencyCount++
	a.latencySum += latency
	a.latencyHist.Record(latency)
	a.windowHist.Record(latency)
	if latency > a.latencyMax {
		a.latencyMax = latency
	}
}

// LatencyWindow summarizes the settle latencies observed since the last
// TakeLatencyWindow call: reset-on-read percentiles for live reporting,
// where the cumulative since-start percentiles would smear a regression
// across the whole run's history.
type LatencyWindow struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// TakeLatencyWindow reports percentiles over the settles recorded since
// the previous call, then resets the window. The cumulative histogram
// behind Snapshot is untouched.
func (a *Aggregate) TakeLatencyWindow() LatencyWindow {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := LatencyWindow{Count: int(a.windowHist.Count())}
	if w.Count > 0 {
		w.P50Ms = a.windowHist.Quantile(0.50).Seconds() * 1000
		w.P95Ms = a.windowHist.Quantile(0.95).Seconds() * 1000
		w.P99Ms = a.windowHist.Quantile(0.99).Seconds() * 1000
		w.MaxMs = a.windowHist.Max().Seconds() * 1000
	}
	a.windowHist.Reset()
	return w
}

// RecoveryStats describes one crash recovery: how much log was replayed,
// how the in-flight swaps were resolved, and how long the rebuild took.
type RecoveryStats struct {
	// Replayed is the number of WAL events folded (snapshot events count
	// once, at snapshot time).
	Replayed int `json:"events_replayed"`
	// Resumed and Refunded split the orders that were in flight at the
	// crash: resumed ones re-entered the book, refunded ones settled
	// NoDeal at the recovery tick.
	Resumed  int `json:"orders_resumed"`
	Refunded int `json:"orders_refunded"`
	// WallMs is the wall-clock cost of the whole recovery (read + fold +
	// engine rebuild).
	WallMs float64 `json:"wall_ms"`
}

// SetRecovery attaches crash-recovery stats to the aggregate; they ride
// along in every subsequent Snapshot.
func (a *Aggregate) SetRecovery(rs RecoveryStats) {
	a.mu.Lock()
	cp := rs
	a.recovery = &cp
	a.mu.Unlock()
}

// SetSigns records the total ed25519 signature count (from the keyring's
// sign meter); Snapshot derives signs-per-swap from it. Set, not added:
// the meter is already cumulative.
func (a *Aggregate) SetSigns(n uint64) {
	a.mu.Lock()
	a.signs = n
	a.mu.Unlock()
}

// Merge folds other's counters, outcome maps, latency histogram, and
// Δ-trajectory into a. The sharded engine uses it to assemble one
// service-level report from per-shard aggregates; called once per shard
// in a fixed order after the shards have stopped, so the concatenated
// trajectory is deterministic. Peak concurrency sums (shards peak
// independently — the sum is an upper bound on the true joint peak), and
// the sign count is left untouched: with a shared keyring it is global
// already and the caller sets it once on the merged aggregate.
func (a *Aggregate) Merge(other *Aggregate) {
	other.mu.Lock()
	defer other.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.offersSubmitted += other.offersSubmitted
	a.offersCleared += other.offersCleared
	a.offersRejected += other.offersRejected
	a.offersShed += other.offersShed
	a.swapsStarted += other.swapsStarted
	a.swapsFinished += other.swapsFinished
	a.swapsFailed += other.swapsFailed
	a.inflight += other.inflight
	a.peakInflight += other.peakInflight
	a.ordersSabotaged += other.ordersSabotaged
	a.reservationConflicts += other.reservationConflicts
	for k, v := range other.outcomes {
		a.outcomes[k] += v
	}
	for k, v := range other.deviations {
		a.deviations[k] += v
	}
	a.latencyCount += other.latencyCount
	a.latencySum += other.latencySum
	if other.latencyMax > a.latencyMax {
		a.latencyMax = other.latencyMax
	}
	a.latencyHist.Merge(&other.latencyHist)
	a.windowHist.Merge(&other.windowHist)
	if other.recovery != nil && a.recovery == nil {
		cp := *other.recovery
		a.recovery = &cp
	}
	a.deltaTraj = append(a.deltaTraj, other.deltaTraj...)
	for k, v := range other.reverts {
		if a.reverts == nil {
			a.reverts = make(map[string]int)
		}
		a.reverts[k] += v
	}
	for k, v := range other.chainDeltas {
		if a.chainDeltas == nil {
			a.chainDeltas = make(map[string]int)
		}
		a.chainDeltas[k] = v
	}
	a.econ.fold(&other.econ)
}

// RestoredCounts carries the counters a recovered engine inherits from
// its pre-crash life; Restore folds them into a fresh aggregate so the
// post-recovery totals continue the pre-crash series.
type RestoredCounts struct {
	Submitted     int
	Cleared       int
	Rejected      int
	Shed          int
	SwapsStarted  int
	SwapsFinished int
	Sabotaged     int
	Outcomes      map[string]int
	Deviations    map[string]int
}

// Restore seeds the aggregate with pre-crash counters. Latency history
// is deliberately not restorable — wall-clock durations from a previous
// process are meaningless in this one — so restored runs report latency
// over post-recovery settles only.
func (a *Aggregate) Restore(rc RestoredCounts) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.offersSubmitted += rc.Submitted
	a.offersCleared += rc.Cleared
	a.offersRejected += rc.Rejected
	a.offersShed += rc.Shed
	a.swapsStarted += rc.SwapsStarted
	a.swapsFinished += rc.SwapsFinished
	a.ordersSabotaged += rc.Sabotaged
	for k, v := range rc.Outcomes {
		a.outcomes[k] += v
	}
	for k, v := range rc.Deviations {
		a.deviations[k] += v
	}
}

// DeltaPoint is one adaptive-Δ controller decision: the Δ chosen for the
// next clearing rounds and the probe window it was computed from.
type DeltaPoint struct {
	// ElapsedSec is when the decision was taken, relative to the
	// aggregate's start.
	ElapsedSec float64 `json:"elapsed_sec"`
	// Round is the clearing round the decision belongs to.
	Round int `json:"round"`
	// DeltaTicks is the Δ handed to swaps cleared from here on.
	DeltaTicks int `json:"delta_ticks"`
	// WindowEWMA and WindowMaxTicks summarize the consumed probe window.
	WindowEWMA     float64 `json:"ewma_ticks"`
	WindowMaxTicks int     `json:"window_max_ticks"`
	// WindowSamples is how many delivery observations backed the decision.
	WindowSamples int `json:"window_samples"`
}

// deltaTrajCap bounds the retained trajectory; when full, the series is
// thinned 2:1 and the stride doubles, so memory stays O(cap) while the
// recorded points still span the whole run.
const deltaTrajCap = 1024

// AddDeltaPoint records one adaptive-Δ controller decision. The elapsed
// timestamp is filled in here so callers only report protocol-level
// fields.
func (a *Aggregate) AddDeltaPoint(p DeltaPoint) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.deltaStride == 0 {
		a.deltaStride = 1
	}
	a.deltaSeen++
	if (a.deltaSeen-1)%a.deltaStride != 0 {
		return
	}
	p.ElapsedSec = time.Since(a.startedAt).Seconds()
	a.deltaTraj = append(a.deltaTraj, p)
	if len(a.deltaTraj) >= deltaTrajCap {
		kept := a.deltaTraj[:0]
		for i := 0; i < len(a.deltaTraj); i += 2 {
			kept = append(kept, a.deltaTraj[i])
		}
		a.deltaTraj = kept
		a.deltaStride *= 2
	}
}

// Throughput is a point-in-time summary of an Aggregate, JSON-ready for
// the benchmark trajectory.
type Throughput struct {
	ElapsedSec      float64 `json:"elapsed_sec"`
	OffersSubmitted int     `json:"offers_submitted"`
	OffersCleared   int     `json:"offers_cleared"`
	OffersRejected  int     `json:"offers_rejected"`
	// OffersShed counts arrivals dropped by the open-loop backstop before
	// intake (reported by the load generator via the engine).
	OffersShed int `json:"offers_shed"`
	// OrdersSettled and OrdersRefunded split the terminal orders into the
	// paper's two happy endings: Deal (the intended swap) and NoDeal (the
	// abort path — every conforming party refunded and kept its asset).
	// Derived from Outcomes; Discount/FreeRide/Underwater (possible only
	// around deviating parties) are counted in neither.
	OrdersSettled  int `json:"orders_settled"`
	OrdersRefunded int `json:"orders_refunded"`
	// OrdersSabotaged counts orders settled in swaps that carried at
	// least one injected deviating party; Deviations breaks the injected
	// deviations down by strategy name.
	OrdersSabotaged int            `json:"orders_sabotaged"`
	Deviations      map[string]int `json:"deviations,omitempty"`
	SwapsStarted    int            `json:"swaps_started"`
	SwapsFinished   int            `json:"swaps_finished"`
	SwapsFailed     int            `json:"swaps_failed"`
	InFlight        int            `json:"in_flight"`
	PeakConcurrent  int            `json:"peak_concurrent"`
	// OffersSubmittedPerSec is intake rate; OffersClearedPerSec is the
	// rate at which offers were matched into swaps. They differ whenever
	// offers are rejected or still pending — reporting both is what makes
	// an overload (intake outrunning clearing) visible.
	OffersSubmittedPerSec float64 `json:"offers_submitted_per_sec"`
	OffersClearedPerSec   float64 `json:"offers_cleared_per_sec"`
	SwapsPerSec           float64 `json:"swaps_per_sec"`
	// Latency fields are float milliseconds: sub-millisecond settles
	// (routine under virtual time) must not truncate to zero.
	AvgLatencyMs float64 `json:"avg_latency_ms"`
	P50LatencyMs float64 `json:"p50_latency_ms"`
	P95LatencyMs float64 `json:"p95_latency_ms"`
	P99LatencyMs float64 `json:"p99_latency_ms"`
	MaxLatencyMs float64 `json:"max_latency_ms"`
	// DeltaTrajectory is the adaptive-Δ controller's decision series
	// (empty unless the engine runs with AdaptiveDelta).
	DeltaTrajectory []DeltaPoint   `json:"delta_trajectory,omitempty"`
	Outcomes        map[string]int `json:"outcomes"`
	ResvConflicts   int            `json:"reservation_conflicts"`
	// Signs is the total ed25519 signatures produced under keyring
	// identities; SignsPerSwap normalizes by finished swaps. The protocol
	// floor is one leader sign per secret plus one wrap per chain
	// extension, so a drift in this ratio flags a signature-count
	// regression before it shows up as throughput loss.
	Signs        uint64  `json:"signs,omitempty"`
	SignsPerSwap float64 `json:"signs_per_swap,omitempty"`
	// Recovery is present only on engines rebuilt from a durable store.
	Recovery *RecoveryStats `json:"recovery,omitempty"`
	// Reverts totals commitment-model reorg reverts observed by swap
	// runs; RevertsByChain breaks them down per chain. Absent on Instant
	// runs.
	Reverts        int            `json:"reverts,omitempty"`
	RevertsByChain map[string]int `json:"reverts_by_chain,omitempty"`
	// ChainDeltas is the per-chain effective Δ in ticks (chain Δ plus
	// confirmation depth) under a commitment model. Absent otherwise.
	ChainDeltas map[string]int `json:"chain_deltas,omitempty"`
	// Economics carries the capital-lock integrals, griefing cost, and
	// bribery-safety margin. Absent when the run locked no capital.
	Economics *EconomicsReport `json:"economics,omitempty"`
}

// Snapshot captures the aggregate now.
func (a *Aggregate) Snapshot() Throughput {
	a.mu.Lock()
	defer a.mu.Unlock()
	elapsed := time.Since(a.startedAt).Seconds()
	t := Throughput{
		ElapsedSec:      elapsed,
		OffersSubmitted: a.offersSubmitted,
		OffersCleared:   a.offersCleared,
		OffersRejected:  a.offersRejected,
		OffersShed:      a.offersShed,
		OrdersSettled:   a.outcomes["Deal"],
		OrdersRefunded:  a.outcomes["NoDeal"],
		OrdersSabotaged: a.ordersSabotaged,
		SwapsStarted:    a.swapsStarted,
		SwapsFinished:   a.swapsFinished,
		SwapsFailed:     a.swapsFailed,
		InFlight:        a.inflight,
		PeakConcurrent:  a.peakInflight,
		Outcomes:        make(map[string]int, len(a.outcomes)),
		ResvConflicts:   a.reservationConflicts,
		Signs:           a.signs,
	}
	if a.signs > 0 && a.swapsFinished > 0 {
		t.SignsPerSwap = float64(a.signs) / float64(a.swapsFinished)
	}
	if a.recovery != nil {
		cp := *a.recovery
		t.Recovery = &cp
	}
	for k, v := range a.outcomes {
		t.Outcomes[k] = v
	}
	if len(a.deviations) > 0 {
		t.Deviations = make(map[string]int, len(a.deviations))
		for k, v := range a.deviations {
			t.Deviations[k] = v
		}
	}
	if elapsed > 0 {
		t.OffersSubmittedPerSec = float64(a.offersSubmitted) / elapsed
		t.OffersClearedPerSec = float64(a.offersCleared) / elapsed
		t.SwapsPerSec = float64(a.swapsFinished) / elapsed
	}
	if a.latencyCount > 0 {
		// Float milliseconds, not Duration.Milliseconds(): integer
		// truncation reported sub-millisecond latencies as 0.0ms.
		t.AvgLatencyMs = a.latencySum.Seconds() * 1000 / float64(a.latencyCount)
		t.MaxLatencyMs = a.latencyMax.Seconds() * 1000
		t.P50LatencyMs = a.latencyHist.Quantile(0.50).Seconds() * 1000
		t.P95LatencyMs = a.latencyHist.Quantile(0.95).Seconds() * 1000
		t.P99LatencyMs = a.latencyHist.Quantile(0.99).Seconds() * 1000
	}
	if len(a.deltaTraj) > 0 {
		t.DeltaTrajectory = append([]DeltaPoint(nil), a.deltaTraj...)
	}
	if len(a.reverts) > 0 {
		t.RevertsByChain = make(map[string]int, len(a.reverts))
		for k, v := range a.reverts {
			t.RevertsByChain[k] = v
			t.Reverts += v
		}
	}
	if len(a.chainDeltas) > 0 {
		t.ChainDeltas = make(map[string]int, len(a.chainDeltas))
		for k, v := range a.chainDeltas {
			t.ChainDeltas[k] = v
		}
	}
	t.Economics = a.econ.report()
	return t
}

// JSON renders the snapshot as one JSON object.
func (t Throughput) JSON() string {
	b, _ := json.Marshal(t)
	return string(b)
}

// String renders a human-readable multi-line summary.
func (t Throughput) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offers: %d submitted, %d cleared, %d rejected, %d shed\n",
		t.OffersSubmitted, t.OffersCleared, t.OffersRejected, t.OffersShed)
	fmt.Fprintf(&b, "orders: %d settled, %d refunded, %d sabotaged\n",
		t.OrdersSettled, t.OrdersRefunded, t.OrdersSabotaged)
	fmt.Fprintf(&b, "swaps:  %d finished (%d failed), peak %d concurrent\n",
		t.SwapsFinished, t.SwapsFailed, t.PeakConcurrent)
	fmt.Fprintf(&b, "rate:   %.1f offers/sec submitted, %.1f offers/sec cleared, %.1f swaps/sec over %.2fs\n",
		t.OffersSubmittedPerSec, t.OffersClearedPerSec, t.SwapsPerSec, t.ElapsedSec)
	fmt.Fprintf(&b, "latency: avg %.2fms, p50 %.2fms, p95 %.2fms, p99 %.2fms, max %.2fms\n",
		t.AvgLatencyMs, t.P50LatencyMs, t.P95LatencyMs, t.P99LatencyMs, t.MaxLatencyMs)
	if t.Signs > 0 {
		fmt.Fprintf(&b, "signs:  %d total, %.2f per swap\n", t.Signs, t.SignsPerSwap)
	}
	if r := t.Recovery; r != nil {
		fmt.Fprintf(&b, "recovery: %d events replayed, %d orders resumed, %d refunded, %.1fms wall\n",
			r.Replayed, r.Resumed, r.Refunded, r.WallMs)
	}
	if t.Reverts > 0 {
		keys := make([]string, 0, len(t.RevertsByChain))
		for k := range t.RevertsByChain {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, t.RevertsByChain[k])
		}
		fmt.Fprintf(&b, "reorgs: %d records reverted (%s)\n", t.Reverts, strings.Join(parts, " "))
	}
	if e := t.Economics; e != nil {
		fmt.Fprintf(&b, "%s\n", e)
	}
	if n := len(t.DeltaTrajectory); n > 0 {
		last := t.DeltaTrajectory[n-1]
		fmt.Fprintf(&b, "delta:  %d adaptations recorded, final Δ=%d ticks (window ewma %.2f, max %d, %d samples)\n",
			n, last.DeltaTicks, last.WindowEWMA, last.WindowMaxTicks, last.WindowSamples)
	}
	keys := make([]string, 0, len(t.Outcomes))
	for k := range t.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, t.Outcomes[k])
	}
	fmt.Fprintf(&b, "outcomes: %s (reservation conflicts: %d)",
		strings.Join(parts, " "), t.ResvConflicts)
	return b.String()
}
