package metrics

import (
	"math"
	"math/bits"
	"time"
)

// Histogram is an HDR-style latency histogram: values are bucketed
// logarithmically with histSubBits bits of sub-bucket resolution, so any
// recorded value lands in a bucket whose width is at most ~3% of the
// value. That bounds the relative error of every reported quantile at
// ~3% while the whole structure stays a fixed-size counter array — no
// per-sample storage, O(1) record, O(buckets) quantile.
//
// Values are recorded in nanoseconds. The zero value is ready to use.
// Histogram is not internally synchronized; Aggregate records into it
// under its own mutex.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	min    int64
	max    int64
}

const (
	// histSubBits is the sub-bucket resolution: 2^histSubBits linear
	// sub-buckets per power of two, i.e. bucket width ≤ value/32 (~3%).
	histSubBits  = 6
	histSubCount = 1 << histSubBits // 64
	histHalf     = histSubCount / 2 // 32
	// histMaxExp covers every positive int64 nanosecond value (bit
	// lengths up to 63 ⇒ exponents up to 63-histSubBits).
	histMaxExp  = 64 - histSubBits
	histBuckets = histSubCount + histMaxExp*histHalf
)

// histIndex maps a non-negative value to its bucket.
func histIndex(v uint64) int {
	if v < histSubCount {
		return int(v)
	}
	exp := bits.Len64(v) - histSubBits // ≥ 1 here
	// v>>exp is in [histHalf, histSubCount): the top histSubBits bits.
	return histSubCount + (exp-1)*histHalf + int(v>>uint(exp)) - histHalf
}

// histValue returns the midpoint of a bucket — the value Quantile
// reports for samples that landed in it.
func histValue(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	exp := uint((idx-histSubCount)/histHalf + 1)
	mant := int64((idx-histSubCount)%histHalf + histHalf)
	lower := mant << exp
	return lower + int64(1)<<(exp-1) // + half the bucket width
}

// Record adds one observation. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(uint64(v))]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
}

// Merge folds other's observations into h: bucket counts add, min/max
// widen. The sharded engine uses it to combine per-shard latency
// histograms into one service-level distribution (exact at bucket
// granularity — the buckets of both histograms are identical).
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
}

// Reset discards every recorded observation, returning the histogram to
// its empty state. Windowed percentile reporting is Record between
// reads, Quantile at the read, then Reset.
func (h *Histogram) Reset() {
	*h = Histogram{}
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Max reports the exact largest recorded value (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the value at quantile q in [0, 1]: the bucket
// midpoint where the cumulative count first reaches q·count, clamped to
// the exact observed [min, max] so tails never overshoot reality. An
// empty histogram reports 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank: ceil, not floor — a fractional q·count must round to
	// the next sample up, or the tail percentile silently excludes the
	// worst observations (p99 of 96 samples is rank 96, not 95).
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			v := histValue(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}
