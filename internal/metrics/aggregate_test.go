package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestSnapshotSubMillisecondLatency is the truncation regression: a 250µs
// settle latency must report as 0.25ms, not 0. The old code went through
// Duration.Milliseconds(), whose integer truncation zeroed every
// sub-millisecond run — exactly the resolution virtual-time loads live at.
func TestSnapshotSubMillisecondLatency(t *testing.T) {
	a := NewAggregate()
	a.AddOutcome("Deal", 250*time.Microsecond)
	s := a.Snapshot()
	if math.Abs(s.AvgLatencyMs-0.25) > 1e-9 {
		t.Errorf("AvgLatencyMs = %v, want 0.25", s.AvgLatencyMs)
	}
	if math.Abs(s.MaxLatencyMs-0.25) > 1e-9 {
		t.Errorf("MaxLatencyMs = %v, want 0.25", s.MaxLatencyMs)
	}
	if s.P50LatencyMs <= 0 || s.P95LatencyMs <= 0 || s.P99LatencyMs <= 0 {
		t.Errorf("percentiles truncated to zero: p50=%v p95=%v p99=%v",
			s.P50LatencyMs, s.P95LatencyMs, s.P99LatencyMs)
	}
	// Percentiles of a single sample are that sample, within bucket error.
	if math.Abs(s.P99LatencyMs-0.25) > 0.25*histRelError {
		t.Errorf("P99LatencyMs = %v, want ~0.25", s.P99LatencyMs)
	}
}

// histRelError is the histogram's documented relative resolution bound.
const histRelError = 0.04

// TestHistogramQuantilesVsBruteForce checks the log-bucketed quantiles
// against an exact sorted-slice computation over several latency-shaped
// distributions.
func TestHistogramQuantilesVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dists := map[string]func() time.Duration{
		// Uniform microseconds-to-milliseconds.
		"uniform": func() time.Duration {
			return time.Duration(rng.Int63n(int64(5 * time.Millisecond)))
		},
		// Log-normal-ish: the classic latency shape with a long tail.
		"lognormal": func() time.Duration {
			v := math.Exp(rng.NormFloat64()*1.5 + 11) // ~60µs median
			return time.Duration(v)
		},
		// Bimodal: fast path plus a slow 1% tail.
		"bimodal": func() time.Duration {
			if rng.Float64() < 0.99 {
				return time.Duration(100+rng.Int63n(50)) * time.Microsecond
			}
			return time.Duration(40+rng.Int63n(20)) * time.Millisecond
		},
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			samples := make([]time.Duration, 10000)
			for i := range samples {
				samples[i] = gen()
				h.Record(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
				idx := int(math.Ceil(q*float64(len(samples)))) - 1
				if idx < 0 {
					idx = 0
				}
				exact := samples[idx]
				got := h.Quantile(q)
				relErr := math.Abs(float64(got-exact)) / float64(exact)
				if relErr > histRelError {
					t.Errorf("q=%v: hist %v vs exact %v (rel err %.4f > %.2f)",
						q, got, exact, relErr, histRelError)
				}
			}
			if h.Max() != samples[len(samples)-1] {
				t.Errorf("Max = %v, want exact %v", h.Max(), samples[len(samples)-1])
			}
			if h.Count() != uint64(len(samples)) {
				t.Errorf("Count = %d, want %d", h.Count(), len(samples))
			}
		})
	}
}

// TestHistogramNearestRank pins the rank rounding on fractional q·count:
// with 10 samples, p95 is the nearest-rank 10th sample, not the floored
// 9th — a floor would systematically drop the worst observation from
// small-sample tails.
func TestHistogramNearestRank(t *testing.T) {
	var h Histogram
	for i := 0; i < 9; i++ {
		h.Record(time.Millisecond)
	}
	h.Record(100 * time.Millisecond)
	got := h.Quantile(0.95)
	if got < 90*time.Millisecond {
		t.Errorf("Quantile(0.95) = %v over 9×1ms + 1×100ms, want the 100ms tail sample", got)
	}
	if h.Quantile(0.90) > 2*time.Millisecond {
		t.Errorf("Quantile(0.90) = %v, want ~1ms (rank 9 of 10)", h.Quantile(0.90))
	}
}

func TestHistogramEmptyAndZero(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Record(0)
	h.Record(-time.Second) // negative clamps to zero
	if h.Count() != 2 || h.Quantile(0.99) != 0 {
		t.Errorf("zero-valued histogram: count=%d q99=%v", h.Count(), h.Quantile(0.99))
	}
}

// TestThroughputRateSplit pins the submitted-vs-cleared distinction: the
// old OffersPerSec was computed from cleared offers while its name (and
// the README) said intake rate. Both are now reported, and they must
// track their respective counters.
func TestThroughputRateSplit(t *testing.T) {
	a := NewAggregate()
	a.AddSubmitted(10)
	a.AddCleared(4)
	s := a.Snapshot()
	if s.OffersSubmittedPerSec <= 0 || s.OffersClearedPerSec <= 0 {
		t.Fatalf("rates not populated: %+v", s)
	}
	ratio := s.OffersSubmittedPerSec / s.OffersClearedPerSec
	if math.Abs(ratio-2.5) > 1e-9 {
		t.Errorf("submitted/cleared rate ratio = %v, want 2.5 (10/4)", ratio)
	}
	out := s.String()
	for _, want := range []string{"offers/sec submitted", "offers/sec cleared"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func TestDeltaTrajectoryRecorded(t *testing.T) {
	a := NewAggregate()
	for i := 0; i < 5; i++ {
		a.AddDeltaPoint(DeltaPoint{Round: i, DeltaTicks: 10 + i, WindowSamples: 32})
	}
	s := a.Snapshot()
	if len(s.DeltaTrajectory) != 5 {
		t.Fatalf("trajectory has %d points, want 5", len(s.DeltaTrajectory))
	}
	if s.DeltaTrajectory[4].DeltaTicks != 14 || s.DeltaTrajectory[4].Round != 4 {
		t.Errorf("last point = %+v", s.DeltaTrajectory[4])
	}
	if s.DeltaTrajectory[0].ElapsedSec < 0 {
		t.Error("elapsed timestamp not stamped")
	}
}

// TestDeltaTrajectoryThinning drives the trajectory past its cap and
// checks it stays bounded while still spanning the whole decision series.
func TestDeltaTrajectoryThinning(t *testing.T) {
	a := NewAggregate()
	const n = 5 * deltaTrajCap
	for i := 0; i < n; i++ {
		a.AddDeltaPoint(DeltaPoint{Round: i, DeltaTicks: i})
	}
	s := a.Snapshot()
	if len(s.DeltaTrajectory) == 0 || len(s.DeltaTrajectory) >= deltaTrajCap {
		t.Fatalf("trajectory has %d points, want (0, %d)", len(s.DeltaTrajectory), deltaTrajCap)
	}
	if first := s.DeltaTrajectory[0].Round; first != 0 {
		t.Errorf("first retained round = %d, want 0", first)
	}
	last := s.DeltaTrajectory[len(s.DeltaTrajectory)-1].Round
	if last < n/2 {
		t.Errorf("last retained round = %d: thinning dropped the tail of %d decisions", last, n)
	}
}
