package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindContractPublished, "contract-published"},
		{KindUnlocked, "unlocked"},
		{KindClaimed, "claimed"},
		{KindRefunded, "refunded"},
		{KindSecretRevealed, "secret-revealed"},
		{KindDeviation, "deviation"},
		{Kind(999), "kind(999)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(tt.kind), got, tt.want)
		}
	}
}

func TestAppendAndEvents(t *testing.T) {
	var l Log
	l.Append(Event{At: 5, Kind: KindContractPublished, Party: "alice", Arc: 0, Lock: -1})
	l.Append(Event{At: 3, Kind: KindUnlocked, Party: "bob", Arc: 1, Lock: 0})

	if l.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", l.Len())
	}
	evs := l.Events()
	if evs[0].Party != "alice" || evs[1].Party != "bob" {
		t.Errorf("Events() not in append order: %+v", evs)
	}
	// Mutating the returned slice must not affect the log.
	evs[0].Party = "mallory"
	if l.Events()[0].Party != "alice" {
		t.Error("Events() returned a live reference to internal state")
	}
}

func TestFilterAndOfKind(t *testing.T) {
	var l Log
	l.Append(Event{At: 1, Kind: KindContractPublished})
	l.Append(Event{At: 2, Kind: KindUnlocked})
	l.Append(Event{At: 3, Kind: KindContractPublished})

	if got := len(l.OfKind(KindContractPublished)); got != 2 {
		t.Errorf("OfKind(published) = %d events, want 2", got)
	}
	if got := len(l.OfKind(KindClaimed)); got != 0 {
		t.Errorf("OfKind(claimed) = %d events, want 0", got)
	}
	late := l.Filter(func(e Event) bool { return e.At >= 2 })
	if len(late) != 2 {
		t.Errorf("Filter(at>=2) = %d events, want 2", len(late))
	}
}

func TestFirstLast(t *testing.T) {
	var l Log
	if _, ok := l.First(KindClaimed); ok {
		t.Error("First on empty log should report not found")
	}
	if _, ok := l.Last(KindClaimed); ok {
		t.Error("Last on empty log should report not found")
	}
	l.Append(Event{At: 7, Kind: KindClaimed, Party: "b"})
	l.Append(Event{At: 2, Kind: KindClaimed, Party: "a"})
	l.Append(Event{At: 9, Kind: KindClaimed, Party: "c"})

	first, ok := l.First(KindClaimed)
	if !ok || first.Party != "a" {
		t.Errorf("First = %+v, ok=%v, want party a", first, ok)
	}
	last, ok := l.Last(KindClaimed)
	if !ok || last.Party != "c" {
		t.Errorf("Last = %+v, ok=%v, want party c", last, ok)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 12, Kind: KindUnlocked, Party: "carol", Arc: 2, Lock: 1, Detail: "path=[C A]"}
	s := e.String()
	for _, want := range []string{"t=12", "unlocked", "party=carol", "arc=2", "lock=1", "path=[C A]"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q, missing %q", s, want)
		}
	}
	// Omitted fields stay out of the rendering.
	e2 := Event{At: 1, Kind: KindAbandoned, Arc: -1, Lock: -1}
	s2 := e2.String()
	if strings.Contains(s2, "arc=") || strings.Contains(s2, "lock=") || strings.Contains(s2, "party=") {
		t.Errorf("Event.String() = %q should omit empty fields", s2)
	}
}

func TestRenderSortsByTime(t *testing.T) {
	var l Log
	l.Append(Event{At: 30, Kind: KindClaimed, Arc: -1, Lock: -1})
	l.Append(Event{At: 10, Kind: KindContractPublished, Arc: -1, Lock: -1})
	l.Append(Event{At: 20, Kind: KindUnlocked, Arc: -1, Lock: -1})

	lines := strings.Split(strings.TrimSpace(l.Render()), "\n")
	if len(lines) != 3 {
		t.Fatalf("Render() produced %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[0], "t=10") || !strings.Contains(lines[2], "t=30") {
		t.Errorf("Render() not time-sorted:\n%s", l.Render())
	}
}

func TestConcurrentAppend(t *testing.T) {
	var l Log
	var wg sync.WaitGroup
	const goroutines, perG = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Append(Event{At: 1, Kind: KindBroadcast})
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != goroutines*perG {
		t.Errorf("Len() = %d, want %d", l.Len(), goroutines*perG)
	}
}
