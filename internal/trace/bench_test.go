package trace

import (
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// BenchmarkTraceAppend guards the zero-allocation claim of the ring: one
// atomic increment plus a value store per event, nothing on the heap.
func BenchmarkTraceAppend(b *testing.B) {
	l := NewLog(DefaultCap)
	ev := Event{At: 42, Kind: KindUnlocked, Party: "p1", Arc: 3, Lock: 1, Detail: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(ev)
	}
}

// BenchmarkTraceAppendParallel exercises slot claiming under contention —
// the engine shape, where every worker appends to one shared flight
// recorder.
func BenchmarkTraceAppendParallel(b *testing.B) {
	l := NewLog(DefaultCap)
	ev := Event{At: 42, Kind: KindUnlocked, Party: "p1", Arc: 3, Lock: 1}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Append(ev)
		}
	})
}

// BenchmarkTraceFilter guards the pre-sized Filter: one result allocation
// per call (plus the snapshot), never a growth series.
func BenchmarkTraceFilter(b *testing.B) {
	l := NewLog(DefaultCap)
	for i := 0; i < DefaultCap; i++ {
		k := KindContractPublished
		if i%2 == 0 {
			k = KindUnlocked
		}
		l.Append(Event{At: vtime.Ticks(i), Kind: k, Arc: i % 5, Lock: -1})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evs := l.Filter(func(e Event) bool { return e.Kind == KindUnlocked })
		if len(evs) != DefaultCap/2 {
			b.Fatalf("filter returned %d events, want %d", len(evs), DefaultCap/2)
		}
	}
}
