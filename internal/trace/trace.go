// Package trace records the observable events of a swap execution as a
// structured, thread-safe log.
//
// The runner, chains, and parties append events; tests assert orderings and
// deadlines against the log; examples and cmd/swapsim render it as the
// step-by-step timelines of the paper's Figures 1 and 2.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Kind identifies what happened.
type Kind int

// Event kinds, covering every observable protocol transition.
const (
	// KindContractPublished records a swap contract appearing on a chain.
	KindContractPublished Kind = iota + 1
	// KindContractRejected records a party abandoning after verifying an
	// incorrect contract on an entering arc.
	KindContractRejected
	// KindUnlocked records a hashlock being unlocked on an arc's contract.
	KindUnlocked
	// KindUnlockFailed records a rejected unlock attempt (expired hashkey,
	// bad signature, wrong sender, and so on).
	KindUnlockFailed
	// KindClaimed records the counterparty taking the escrowed asset.
	KindClaimed
	// KindRefunded records the original party reclaiming the escrowed asset.
	KindRefunded
	// KindSecretRevealed records a leader first disclosing its secret.
	KindSecretRevealed
	// KindAbandoned records a party halting participation.
	KindAbandoned
	// KindBroadcast records a message published on the shared broadcast
	// chain (the Section 4.5 optimization or market-clearing traffic).
	KindBroadcast
	// KindDeviation records an adversarial action that departs from the
	// conforming protocol, for test assertions and demo narration.
	KindDeviation
)

var kindNames = map[Kind]string{
	KindContractPublished: "contract-published",
	KindContractRejected:  "contract-rejected",
	KindUnlocked:          "unlocked",
	KindUnlockFailed:      "unlock-failed",
	KindClaimed:           "claimed",
	KindRefunded:          "refunded",
	KindSecretRevealed:    "secret-revealed",
	KindAbandoned:         "abandoned",
	KindBroadcast:         "broadcast",
	KindDeviation:         "deviation",
}

// String returns the lowercase event-kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one observable occurrence during a run.
type Event struct {
	At     vtime.Ticks
	Kind   Kind
	Party  string // acting party, "" when not applicable
	Arc    int    // arc ID, -1 when not applicable
	Lock   int    // hashlock index, -1 when not applicable
	Detail string
}

// String renders the event as a single trace line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%-6d %-20s", int64(e.At), e.Kind)
	if e.Party != "" {
		fmt.Fprintf(&b, " party=%s", e.Party)
	}
	if e.Arc >= 0 {
		fmt.Fprintf(&b, " arc=%d", e.Arc)
	}
	if e.Lock >= 0 {
		fmt.Fprintf(&b, " lock=%d", e.Lock)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// Log is an append-only, thread-safe event log. The zero value is ready to
// use.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Append adds an event to the log.
func (l *Log) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

// Len reports the number of events recorded so far.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of the log, in append order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Filter returns the events for which keep returns true, in append order.
func (l *Log) Filter(keep func(Event) bool) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, e := range l.events {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// OfKind returns the events of the given kind, in append order.
func (l *Log) OfKind(k Kind) []Event {
	return l.Filter(func(e Event) bool { return e.Kind == k })
}

// First returns the earliest event of the given kind and whether one exists.
func (l *Log) First(k Kind) (Event, bool) {
	evs := l.OfKind(k)
	if len(evs) == 0 {
		return Event{}, false
	}
	min := evs[0]
	for _, e := range evs[1:] {
		if e.At < min.At {
			min = e
		}
	}
	return min, true
}

// Last returns the latest event of the given kind and whether one exists.
func (l *Log) Last(k Kind) (Event, bool) {
	evs := l.OfKind(k)
	if len(evs) == 0 {
		return Event{}, false
	}
	max := evs[0]
	for _, e := range evs[1:] {
		if e.At >= max.At {
			max = e
		}
	}
	return max, true
}

// Render formats the whole log, sorted by time (stable for ties), one event
// per line.
func (l *Log) Render() string {
	evs := l.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
