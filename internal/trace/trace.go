// Package trace records the observable events of a swap execution as a
// structured, thread-safe log.
//
// The runner, chains, and parties append events; tests assert orderings and
// deadlines against the log; examples and cmd/swapsim render it as the
// step-by-step timelines of the paper's Figures 1 and 2.
//
// The log is a fixed-size ring of value records: Append claims a slot with
// one atomic increment and stores the Event struct by value — no
// per-append allocation, no global mutex — and formatting is deferred to
// render time. Under sustained engine load the ring acts as a flight
// recorder: the most recent DefaultCap events survive, older ones are
// overwritten, and Dropped reports how many were lost.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Kind identifies what happened.
type Kind int

// Event kinds, covering every observable protocol transition.
const (
	// KindContractPublished records a swap contract appearing on a chain.
	KindContractPublished Kind = iota + 1
	// KindContractRejected records a party abandoning after verifying an
	// incorrect contract on an entering arc.
	KindContractRejected
	// KindUnlocked records a hashlock being unlocked on an arc's contract.
	KindUnlocked
	// KindUnlockFailed records a rejected unlock attempt (expired hashkey,
	// bad signature, wrong sender, and so on).
	KindUnlockFailed
	// KindClaimed records the counterparty taking the escrowed asset.
	KindClaimed
	// KindRefunded records the original party reclaiming the escrowed asset.
	KindRefunded
	// KindSecretRevealed records a leader first disclosing its secret.
	KindSecretRevealed
	// KindAbandoned records a party halting participation.
	KindAbandoned
	// KindBroadcast records a message published on the shared broadcast
	// chain (the Section 4.5 optimization or market-clearing traffic).
	KindBroadcast
	// KindDeviation records an adversarial action that departs from the
	// conforming protocol, for test assertions and demo narration.
	KindDeviation
)

var kindNames = map[Kind]string{
	KindContractPublished: "contract-published",
	KindContractRejected:  "contract-rejected",
	KindUnlocked:          "unlocked",
	KindUnlockFailed:      "unlock-failed",
	KindClaimed:           "claimed",
	KindRefunded:          "refunded",
	KindSecretRevealed:    "secret-revealed",
	KindAbandoned:         "abandoned",
	KindBroadcast:         "broadcast",
	KindDeviation:         "deviation",
}

// String returns the lowercase event-kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one observable occurrence during a run.
type Event struct {
	At     vtime.Ticks
	Kind   Kind
	Party  string // acting party, "" when not applicable
	Arc    int    // arc ID, -1 when not applicable
	Lock   int    // hashlock index, -1 when not applicable
	Detail string
}

// String renders the event as a single trace line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%-6d %-20s", int64(e.At), e.Kind)
	if e.Party != "" {
		fmt.Fprintf(&b, " party=%s", e.Party)
	}
	if e.Arc >= 0 {
		fmt.Fprintf(&b, " arc=%d", e.Arc)
	}
	if e.Lock >= 0 {
		fmt.Fprintf(&b, " lock=%d", e.Lock)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// DefaultCap is the ring capacity a zero-value Log initializes itself to
// on first use: large enough that single-swap runs and scenario tests never
// wrap, small enough that an engine-wide shared log stays cache-resident.
const DefaultCap = 1 << 12

// slot is one ring cell. seq is the 1-based global append index of the
// event stored in it (0 = never written); the per-slot mutex orders the
// rare case of two appends a full ring apart racing for the same cell, and
// the seq guard makes the newer event win regardless of arrival order.
type slot struct {
	mu  sync.Mutex
	seq uint64
	ev  Event
}

// Log is an append-only, thread-safe event log backed by a fixed-size ring
// of value records. The zero value is ready to use (capacity DefaultCap);
// NewLog picks an explicit capacity. When the ring wraps, the oldest
// events are overwritten — Len still counts every append, and Dropped
// reports how many records were lost to overwrite.
type Log struct {
	init  sync.Once
	mask  uint64
	slots []slot
	next  atomic.Uint64 // total events ever appended
}

// NewLog returns a log whose ring holds at least capacity events (rounded
// up to a power of two; capacity <= 0 means DefaultCap).
func NewLog(capacity int) *Log {
	l := &Log{}
	l.setup(capacity)
	return l
}

func (l *Log) setup(capacity int) {
	l.init.Do(func() {
		if capacity <= 0 {
			capacity = DefaultCap
		}
		c := 1
		for c < capacity {
			c <<= 1
		}
		l.mask = uint64(c - 1)
		l.slots = make([]slot, c)
	})
}

// Append adds an event to the log. One atomic increment claims a slot; the
// event is stored by value, so the hot path allocates nothing.
func (l *Log) Append(e Event) {
	l.setup(0)
	seq := l.next.Add(1)
	s := &l.slots[(seq-1)&l.mask]
	s.mu.Lock()
	if seq > s.seq { // stale wrap-around writer lost the slot: drop it
		s.seq = seq
		s.ev = e
	}
	s.mu.Unlock()
}

// Len reports the number of events appended so far (including any since
// overwritten by ring wrap-around).
func (l *Log) Len() int {
	return int(l.next.Load())
}

// Cap reports the ring capacity: the maximum number of events retained.
func (l *Log) Cap() int {
	l.setup(0)
	return len(l.slots)
}

// Dropped reports how many events have been overwritten by wrap-around.
func (l *Log) Dropped() int {
	l.setup(0)
	if n := l.Len(); n > len(l.slots) {
		return n - len(l.slots)
	}
	return 0
}

// retained returns the surviving events in append order. The snapshot is
// not atomic across slots — appends racing with it may or may not appear —
// which is the flight-recorder contract: callers wanting exact logs read
// after their run quiesces, as every test and renderer does.
func (l *Log) retained() []Event {
	l.setup(0)
	n := l.Len()
	if n > len(l.slots) {
		n = len(l.slots)
	}
	type rec struct {
		seq uint64
		ev  Event
	}
	recs := make([]rec, 0, n)
	for i := range l.slots {
		s := &l.slots[i]
		s.mu.Lock()
		if s.seq > 0 {
			recs = append(recs, rec{s.seq, s.ev})
		}
		s.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	out := make([]Event, len(recs))
	for i, r := range recs {
		out[i] = r.ev
	}
	return out
}

// Events returns a copy of the retained events, in append order.
func (l *Log) Events() []Event {
	return l.retained()
}

// Filter returns the retained events for which keep returns true, in
// append order. The result is pre-sized from the retained count, so a
// filter over a full ring does one allocation instead of a growth series.
func (l *Log) Filter(keep func(Event) bool) []Event {
	evs := l.retained()
	out := make([]Event, 0, len(evs))
	for _, e := range evs {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// OfKind returns the events of the given kind, in append order.
func (l *Log) OfKind(k Kind) []Event {
	return l.Filter(func(e Event) bool { return e.Kind == k })
}

// First returns the earliest event of the given kind and whether one exists.
func (l *Log) First(k Kind) (Event, bool) {
	evs := l.OfKind(k)
	if len(evs) == 0 {
		return Event{}, false
	}
	min := evs[0]
	for _, e := range evs[1:] {
		if e.At < min.At {
			min = e
		}
	}
	return min, true
}

// Last returns the latest event of the given kind and whether one exists.
func (l *Log) Last(k Kind) (Event, bool) {
	evs := l.OfKind(k)
	if len(evs) == 0 {
		return Event{}, false
	}
	max := evs[0]
	for _, e := range evs[1:] {
		if e.At >= max.At {
			max = e
		}
	}
	return max, true
}

// Render formats the whole log, sorted by time (stable for ties), one event
// per line.
func (l *Log) Render() string {
	evs := l.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
