package sim

import (
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

func TestRunsInTimeOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	end := s.Run()
	if end != 30 {
		t.Errorf("final time = %d, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events ran out of order: %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New(1)
	var fired vtime.Ticks = -1
	s.At(10, func() {
		s.After(5, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 15 {
		t.Errorf("After(5) at t=10 fired at %d, want 15", fired)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	s := New(1)
	var fired vtime.Ticks = -1
	s.At(10, func() {
		s.At(3, func() { fired = s.Now() }) // in the past
	})
	s.Run()
	if fired != 10 {
		t.Errorf("past event fired at %d, want clamp to 10", fired)
	}
}

func TestStepAndPending(t *testing.T) {
	s := New(1)
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	if !s.Step() {
		t.Fatal("Step should execute an event")
	}
	if s.Pending() != 1 || s.Steps() != 1 {
		t.Errorf("after one step: pending=%d steps=%d", s.Pending(), s.Steps())
	}
	s.Run()
	if s.Step() {
		t.Error("Step on empty queue should report false")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var ran []vtime.Ticks
	for _, at := range []vtime.Ticks{5, 10, 15, 20} {
		at := at
		s.At(at, func() { ran = append(ran, at) })
	}
	now := s.RunUntil(12)
	if now != 12 {
		t.Errorf("RunUntil returned %d, want 12", now)
	}
	if len(ran) != 2 {
		t.Errorf("ran %v, want events at 5 and 10 only", ran)
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
	// Finishing the run picks up the rest.
	s.Run()
	if len(ran) != 4 {
		t.Errorf("after Run: ran %v, want all 4", ran)
	}
}

func TestRunUntilAdvancesIdleTime(t *testing.T) {
	s := New(1)
	if now := s.RunUntil(100); now != 100 {
		t.Errorf("idle RunUntil = %d, want 100", now)
	}
}

func TestCascadedEvents(t *testing.T) {
	// Events scheduling events: a chain of N hops lands at tick N.
	s := New(1)
	const hops = 50
	count := 0
	var hop func()
	hop = func() {
		count++
		if count < hops {
			s.After(1, hop)
		}
	}
	s.After(1, hop)
	end := s.Run()
	if count != hops || end != hops {
		t.Errorf("count=%d end=%d, want %d/%d", count, end, hops, hops)
	}
}

func TestTimerCancellation(t *testing.T) {
	s := New(1)
	var ran []int
	tm := s.At(10, func() { ran = append(ran, 1) })
	s.At(20, func() { ran = append(ran, 2) })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer must report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop must report false")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d after cancel, want 1", s.Pending())
	}
	end := s.Run()
	if len(ran) != 1 || ran[0] != 2 {
		t.Fatalf("ran %v, want [2]", ran)
	}
	if end != 20 || s.Steps() != 1 {
		t.Fatalf("end=%d steps=%d: cancelled event advanced time or counted", end, s.Steps())
	}
	// A fired timer cannot be stopped.
	tm2 := s.At(30, func() {})
	s.Run()
	if tm2.Stop() {
		t.Fatal("Stop after firing must report false")
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	s := New(1)
	var ran []int
	tm := s.At(5, func() { ran = append(ran, 1) })
	s.At(50, func() { ran = append(ran, 2) })
	tm.Stop()
	// The cancelled head must not let RunUntil execute the tick-50 event.
	if now := s.RunUntil(10); now != 10 {
		t.Fatalf("RunUntil = %d, want 10", now)
	}
	if len(ran) != 0 {
		t.Fatalf("ran %v, want none", ran)
	}
	s.Run()
	if len(ran) != 1 || ran[0] != 2 {
		t.Fatalf("ran %v, want [2]", ran)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 10; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed should give identical random streams")
		}
	}
}
