// Package sim provides the deterministic discrete-event scheduler that
// drives swap simulations.
//
// The paper's timing model has a single parameter Δ; all protocol behavior
// is a reaction to a chain state change observed within Δ of the action
// that caused it. The scheduler realizes this: every action schedules its
// observable consequences as future events, virtual time jumps from event
// to event, and ties are broken by scheduling order, so a run is a pure
// function of its inputs and seed.
//
// Scheduler is the deterministic implementation of sched.Scheduler; the
// real-time and free-running virtual implementations live in
// internal/sched. Unlike those, this one is single-threaded by contract:
// the caller drives it with Step/Run/RunUntil and no locking is done.
package sim

import (
	"container/heap"
	"math/rand"

	"github.com/go-atomicswap/atomicswap/internal/sched"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// event is a scheduled callback.
type event struct {
	at      vtime.Ticks
	seq     int64 // tie-break: FIFO among same-tick events
	fn      func()
	stopped bool
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event loop. The zero value is
// not usable; create one with New.
type Scheduler struct {
	now    vtime.Ticks
	seq    int64
	queue  eventHeap
	rng    *rand.Rand
	nSteps int
}

// Scheduler is the deterministic sched.Scheduler implementation.
var _ sched.Scheduler = (*Scheduler)(nil)

// New returns a scheduler starting at tick 0 with the given seed for any
// randomized policies layered on top.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time. Scheduler implements vtime.Clock.
func (s *Scheduler) Now() vtime.Ticks { return s.now }

// Rand returns the scheduler's seeded random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at the given tick and returns a cancellable
// timer. Scheduling in the past (or present) runs at the current tick,
// after already-queued current-tick events — time never moves backwards.
func (s *Scheduler) At(t vtime.Ticks, fn func()) sched.Timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	return (*simTimer)(e)
}

// After schedules fn to run d ticks from now.
func (s *Scheduler) After(d vtime.Duration, fn func()) sched.Timer {
	return s.At(s.now.Add(d), fn)
}

// Hold implements sched.Scheduler. The deterministic scheduler only
// advances when the caller steps it, so there is nothing to pin.
func (s *Scheduler) Hold() func() { return func() {} }

// simTimer cancels an event lazily: the heap entry stays and is discarded
// — without advancing time or counting a step — when popped.
type simTimer event

// Stop implements sched.Timer.
func (t *simTimer) Stop() bool {
	if t.stopped || t.fn == nil {
		return false
	}
	t.stopped = true
	return true
}

// Pending reports the number of queued (non-cancelled) events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, e := range s.queue {
		if !e.stopped {
			n++
		}
	}
	return n
}

// Steps reports how many events have been executed.
func (s *Scheduler) Steps() int { return s.nSteps }

// Step executes the next live event, advancing time to it. Cancelled
// events are discarded without advancing time or counting a step. It
// reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.stopped {
			continue
		}
		s.now = e.at
		s.nSteps++
		fn := e.fn
		e.fn = nil // marks the event as fired for Timer.Stop
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty and returns the final time.
func (s *Scheduler) Run() vtime.Ticks {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with time ≤ deadline; events scheduled later
// stay queued. Time advances to the deadline if the queue drains first or
// only later events remain.
func (s *Scheduler) RunUntil(deadline vtime.Ticks) vtime.Ticks {
	for len(s.queue) > 0 {
		if s.queue[0].stopped {
			heap.Pop(&s.queue)
			continue
		}
		if s.queue[0].at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}
