// Package sim provides the deterministic discrete-event scheduler that
// drives swap simulations.
//
// The paper's timing model has a single parameter Δ; all protocol behavior
// is a reaction to a chain state change observed within Δ of the action
// that caused it. The scheduler realizes this: every action schedules its
// observable consequences as future events, virtual time jumps from event
// to event, and ties are broken by scheduling order, so a run is a pure
// function of its inputs and seed.
package sim

import (
	"container/heap"
	"math/rand"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// event is a scheduled callback.
type event struct {
	at  vtime.Ticks
	seq int64 // tie-break: FIFO among same-tick events
	fn  func()
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event loop. The zero value is
// not usable; create one with New.
type Scheduler struct {
	now    vtime.Ticks
	seq    int64
	queue  eventHeap
	rng    *rand.Rand
	nSteps int
}

// New returns a scheduler starting at tick 0 with the given seed for any
// randomized policies layered on top.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time. Scheduler implements vtime.Clock.
func (s *Scheduler) Now() vtime.Ticks { return s.now }

// Rand returns the scheduler's seeded random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// At schedules fn to run at the given tick. Scheduling in the past (or
// present) runs at the current tick, after already-queued current-tick
// events — time never moves backwards.
func (s *Scheduler) At(t vtime.Ticks, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d ticks from now.
func (s *Scheduler) After(d vtime.Duration, fn func()) {
	s.At(s.now.Add(d), fn)
}

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Steps reports how many events have been executed.
func (s *Scheduler) Steps() int { return s.nSteps }

// Step executes the next event, advancing time to it. It reports whether
// an event was executed.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.at
	s.nSteps++
	e.fn()
	return true
}

// Run executes events until the queue is empty and returns the final time.
func (s *Scheduler) Run() vtime.Ticks {
	for s.Step() {
	}
	return s.now
}

// RunUntil executes events with time ≤ deadline; events scheduled later
// stay queued. Time advances to the deadline if the queue drains first or
// only later events remain.
func (s *Scheduler) RunUntil(deadline vtime.Ticks) vtime.Ticks {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}
