// Package expt is the experiment harness: one function per figure or
// quantitative claim of the paper, each returning a rendered table that
// cmd/swapbench prints and EXPERIMENTS.md records. The experiment index
// lives in DESIGN.md §4.
package expt

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting every cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", t.ID, t.Title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Columns, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID  string
	Run func() (*Table, error)
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", E1Timeline},
		{"E2", E2CompletionTime},
		{"E3", E3SpaceComplexity},
		{"E4", E4Communication},
		{"E5", E5AdversarialMatrix},
		{"E6", E6NonStronglyConnected},
		{"E7", E7LeadersNotFVS},
		{"E8", E8SingleLeaderStaircase},
		{"E9", E9Figure7Hashkeys},
		{"E10", E10PebbleGames},
		{"E11", E11TimeoutAttacks},
		{"E12", E12GriefingLockup},
		{"E13", E13RecurrentSwaps},
		{"E14", E14FeedbackVertexSets},
		{"E15", E15BroadcastShortCircuit},
		{"E16", E16Multigraph},
		{"E17", E17FaultAttribution},
	}
}
