package expt

import (
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table ID %s under experiment %s", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			out := tbl.Render()
			if !strings.Contains(out, tbl.Title) {
				t.Errorf("%s render missing title", e.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("%s row width %d != %d columns", e.ID, len(row), len(tbl.Columns))
				}
			}
		})
	}
}

func TestE2AllWithinBound(t *testing.T) {
	tbl, err := E2CompletionTime()
	if err != nil {
		t.Fatal(err)
	}
	within := len(tbl.Columns) - 1
	for _, row := range tbl.Rows {
		if row[within] != "true" {
			t.Errorf("family %s exceeded the 2·diam·Δ bound", row[0])
		}
	}
}

func TestE5AllScenariosSafe(t *testing.T) {
	tbl, err := E5AdversarialMatrix()
	if err != nil {
		t.Fatal(err)
	}
	safeCol := len(tbl.Columns) - 1
	for _, row := range tbl.Rows {
		if row[safeCol] != "true" {
			t.Errorf("scenario %q left a conforming party Underwater", row[0])
		}
	}
}

func TestE11BaselinesFailProtocolsHold(t *testing.T) {
	tbl, err := E11TimeoutAttacks()
	if err != nil {
		t.Fatal(err)
	}
	atomicCol := len(tbl.Columns) - 1
	want := map[int]string{0: "false", 1: "true", 2: "true", 3: "false"}
	for i, row := range tbl.Rows {
		if row[atomicCol] != want[i] {
			t.Errorf("row %d (%s): atomic = %s, want %s", i, row[0], row[atomicCol], want[i])
		}
	}
}

func TestE9MatchesFigure7(t *testing.T) {
	// The two-leader triangle has, per arc, one hashkey per simple path
	// from the counterparty to each leader. Each vertex has paths
	// {itself-as-leader: 1 or 2} summing to 20 hashkeys over 6 arcs —
	// exactly Figure 7's listing.
	tbl, err := E9Figure7Hashkeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 20 {
		t.Errorf("hashkey rows = %d, want 20", len(tbl.Rows))
	}
	// Degenerate leader paths (|p| = 0) appear once per entering arc of
	// each leader: two arcs enter A and two enter B — four in total.
	degenerate := 0
	for _, row := range tbl.Rows {
		if row[3] == "0" {
			degenerate++
		}
	}
	if degenerate != 4 {
		t.Errorf("degenerate paths = %d, want 4", degenerate)
	}
}

func TestE15BroadcastIsConstant(t *testing.T) {
	tbl, err := E15BroadcastShortCircuit()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[3] != "1Δ" {
			t.Errorf("%s: broadcast phase-2 span = %s, want 1Δ", row[0], row[3])
		}
	}
}

func TestE17ExactBlame(t *testing.T) {
	tbl, err := E17FaultAttribution()
	if err != nil {
		t.Fatal(err)
	}
	last := len(tbl.Columns) - 1
	for _, row := range tbl.Rows {
		if row[last] != "true" {
			t.Errorf("scenario %q: audit did not blame exactly the deviator", row[0])
		}
	}
}

func TestTableAddRowFormatting(t *testing.T) {
	tbl := &Table{ID: "X", Title: "t", Columns: []string{"a", "b"}}
	tbl.AddRow(1, true)
	if tbl.Rows[0][0] != "1" || tbl.Rows[0][1] != "true" {
		t.Errorf("AddRow formatting: %v", tbl.Rows[0])
	}
}
