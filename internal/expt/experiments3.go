package expt

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/audit"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
)

// E17FaultAttribution runs each named deviation and audits the ledgers:
// exactly the deviating party should be blamed, from public state only —
// the Section 5 bonds/fault-attribution extension, implemented.
func E17FaultAttribution() (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "Section 5 (future work, implemented): ledger-only fault attribution",
		Columns: []string{"scenario", "deviator", "faults found", "exactly the deviator blamed"},
	}
	type scenario struct {
		name     string
		deviator digraph.Vertex
		rig      func(*core.Setup, *core.Runner)
	}
	scenarios := []scenario{
		{
			name:     "all conforming",
			deviator: -1,
			rig:      func(*core.Setup, *core.Runner) {},
		},
		{
			name:     "silent leader",
			deviator: 0,
			rig: func(s *core.Setup, r *core.Runner) {
				idx, _ := s.Spec.LeaderIndex(0)
				r.SetBehavior(0, adversary.SilentLeader(idx))
			},
		},
		{
			name:     "withheld publication",
			deviator: 1,
			rig: func(s *core.Setup, r *core.Runner) {
				r.SetBehavior(1, adversary.WithholdPublications())
			},
		},
		{
			name:     "crash during Phase Two",
			deviator: 2,
			rig: func(s *core.Setup, r *core.Runner) {
				r.SetBehavior(2, adversary.HaltAt(core.NewConforming(), 125))
			},
		},
		{
			name:     "corrupt contract",
			deviator: 0,
			rig: func(s *core.Setup, r *core.Runner) {
				r.SetBehavior(0, adversary.CorruptPublisher())
			},
		},
	}
	for _, sc := range scenarios {
		setup, err := core.NewSetup(graphgen.ThreeWay(), core.Config{
			Delta: 10, Start: 100, Rand: rand.New(rand.NewSource(30)),
		})
		if err != nil {
			return nil, err
		}
		r := core.NewRunner(setup, core.Options{Seed: 30})
		sc.rig(setup, r)
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		faults := audit.Run(setup.Spec, res.Registry)
		var kinds []string
		exact := true
		for _, f := range faults {
			kinds = append(kinds, fmt.Sprintf("%s:%s", f.Party, f.Kind))
			if f.Vertex != sc.deviator {
				exact = false
			}
		}
		if sc.deviator == -1 {
			exact = len(faults) == 0
		} else if len(faults) == 0 {
			exact = false
		}
		deviatorName := "-"
		if sc.deviator >= 0 {
			deviatorName = string(setup.Spec.PartyOf(sc.deviator))
		}
		line := strings.Join(kinds, ", ")
		if line == "" {
			line = "none"
		}
		t.AddRow(sc.name, deviatorName, line, exact)
	}
	t.Notes = append(t.Notes,
		"the auditor reads only public state (plans, publication times, final contract state) — exactly what a bond-slashing contract could verify")
	return t, nil
}
