package expt

import (
	"fmt"
	"math/rand"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// family is a named digraph for sweeps.
type family struct {
	name string
	d    *digraph.Digraph
}

func sweepFamilies() []family {
	return []family{
		{"three-way (Fig 1)", graphgen.ThreeWay()},
		{"two-leader triangle (Fig 7)", graphgen.TwoLeaderTriangle()},
		{"cycle-4", graphgen.Cycle(4)},
		{"cycle-6", graphgen.Cycle(6)},
		{"cycle-8", graphgen.Cycle(8)},
		{"cycle-12", graphgen.Cycle(12)},
		{"bidir-cycle-5", graphgen.BidirCycle(5)},
		{"bidir-cycle-7", graphgen.BidirCycle(7)},
		{"clique-4", graphgen.Clique(4)},
		{"clique-5", graphgen.Clique(5)},
		{"clique-6", graphgen.Clique(6)},
		{"flower-3x2", graphgen.Flower(3, 2)},
		{"flower-4x2", graphgen.Flower(4, 2)},
		{"random-8", graphgen.RandomStronglyConnected(8, 0.3, 42)},
		{"random-10", graphgen.RandomStronglyConnected(10, 0.25, 43)},
		{"random-12", graphgen.RandomStronglyConnected(12, 0.2, 44)},
	}
}

func conformingRun(d *digraph.Digraph, cfg core.Config, seed int64) (*core.Setup, *core.Result, error) {
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(seed + 7777))
	}
	setup, err := core.NewSetup(d, cfg)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.NewRunner(setup, core.Options{Seed: seed}).Run()
	return setup, res, err
}

// E1Timeline reproduces Figures 1 and 2: the Alice–Bob–Carol swap, event
// by event, in Δ units from the start time.
func E1Timeline() (*Table, error) {
	setup, res, err := conformingRun(graphgen.ThreeWay(), core.Config{Delta: 10, Start: 100}, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E1",
		Title:   "Figures 1–2: three-way swap timeline (Δ units from start T)",
		Columns: []string{"t-T", "event", "party", "arc", "detail"},
	}
	for _, ev := range res.Log.Events() {
		if ev.Kind == trace.KindBroadcast {
			continue
		}
		arc := "-"
		if ev.Arc >= 0 {
			a := setup.Spec.D.Arc(ev.Arc)
			arc = fmt.Sprintf("%s->%s", setup.Spec.D.Name(a.Head), setup.Spec.D.Name(a.Tail))
		}
		t.AddRow(vtime.InDelta(ev.At.Sub(setup.Spec.Start), setup.Spec.Delta), ev.Kind, ev.Party, arc, ev.Detail)
	}
	t.Notes = append(t.Notes,
		"deploys run leader->follower (lazy pebble game), unlocks run backwards (eager game on the transpose)",
		fmt.Sprintf("all parties Deal: %v; paper predicts completion ≤ 2·diam·Δ = 4Δ", res.Report.AllDeal()))
	return t, nil
}

// E2CompletionTime measures Theorem 4.7: all-conforming completion within
// 2·diam(D)·Δ across graph families.
func E2CompletionTime() (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Theorem 4.7: completion time vs the 2·diam(D)·Δ bound (all conforming)",
		Columns: []string{"digraph", "|V|", "|A|", "|L|", "diam", "last unlock (Δ)", "bound (Δ)", "within"},
	}
	for _, f := range sweepFamilies() {
		setup, res, err := conformingRun(f.d, core.Config{}, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
		if !res.Report.AllDeal() {
			return nil, fmt.Errorf("%s: not AllDeal", f.name)
		}
		last, _ := res.Log.Last(trace.KindUnlocked)
		elapsed := last.At.Sub(setup.Spec.Start)
		bound := vtime.Scale(2*setup.Spec.DiamBound, setup.Spec.Delta)
		t.AddRow(f.name, f.d.NumVertices(), f.d.NumArcs(), len(setup.Spec.Leaders),
			setup.Spec.DiamBound,
			vtime.InDelta(elapsed, setup.Spec.Delta),
			vtime.InDelta(bound, setup.Spec.Delta),
			elapsed <= bound)
	}
	t.Notes = append(t.Notes, "the bound is met with equality on cycles: the worst case is tight")
	return t, nil
}

// E3SpaceComplexity measures Theorem 4.10: total bytes stored across all
// chains, against the O(|A|²) model (each of |A| contracts stores an
// O(|A|)-byte digraph).
func E3SpaceComplexity() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Theorem 4.10: on-chain storage vs O(|A|²)",
		Columns: []string{"digraph", "|A|", "|L|", "total bytes", "bytes/|A|", "bytes/|A|²"},
	}
	for _, f := range sweepFamilies() {
		_, res, err := conformingRun(f.d, core.Config{}, 3)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
		m := f.d.NumArcs()
		t.AddRow(f.name, m, len(res.Spec.Leaders), res.StorageBytes,
			res.StorageBytes/m, fmt.Sprintf("%.1f", float64(res.StorageBytes)/float64(m*m)))
	}
	t.Notes = append(t.Notes,
		"bytes/|A| grows linearly with |A| (the per-contract digraph copy) while bytes/|A|² stays near-constant — the quadratic shape of Theorem 4.10")
	return t, nil
}

// E4Communication measures the abstract's communication claim: unlock
// traffic is O(|A|·|L|) — every arc carries one hashkey per lock.
func E4Communication() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Communication: unlock calls and bytes vs |A|·|L|",
		Columns: []string{"digraph", "|A|", "|L|", "|A|·|L|", "unlock calls", "unlock bytes", "bytes/(|A|·|L|)"},
	}
	for _, f := range sweepFamilies() {
		_, res, err := conformingRun(f.d, core.Config{}, 4)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
		al := f.d.NumArcs() * len(res.Spec.Leaders)
		t.AddRow(f.name, f.d.NumArcs(), len(res.Spec.Leaders), al,
			res.Counters.UnlockCalls, res.Counters.UnlockBytes,
			fmt.Sprintf("%.1f", float64(res.Counters.UnlockBytes)/float64(al)))
	}
	t.Notes = append(t.Notes,
		"unlock calls = |A|·|L| exactly; per-call bytes vary with signature-path length, bounded by diam")
	return t, nil
}

// E5AdversarialMatrix summarizes Theorem 4.9 across the named deviation
// scenarios: conforming parties never end Underwater.
func E5AdversarialMatrix() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Theorem 4.9: named deviations — conforming parties never Underwater",
		Columns: []string{"scenario", "digraph", "deviators", "outcomes (per party)", "conforming safe"},
	}
	type scenario struct {
		name  string
		d     *digraph.Digraph
		kind  core.Kind
		apply func(*core.Setup, *core.Runner)
	}
	scenarios := []scenario{
		{
			name: "halt before start",
			d:    graphgen.ThreeWay(),
			apply: func(s *core.Setup, r *core.Runner) {
				r.SetBehavior(1, adversary.HaltAt(core.NewConforming(), 0))
			},
		},
		{
			name: "halt mid Phase Two",
			d:    graphgen.ThreeWay(),
			apply: func(s *core.Setup, r *core.Runner) {
				r.SetBehavior(2, adversary.HaltAt(core.NewConforming(), s.Spec.Start.Add(vtime.Scale(2, s.Spec.Delta)).Add(5)))
			},
		},
		{
			name: "silent leader (griefing)",
			d:    graphgen.ThreeWay(),
			apply: func(s *core.Setup, r *core.Runner) {
				idx, _ := s.Spec.LeaderIndex(0)
				r.SetBehavior(0, adversary.SilentLeader(idx))
			},
		},
		{
			name: "withhold all publications",
			d:    graphgen.TwoLeaderTriangle(),
			apply: func(s *core.Setup, r *core.Runner) {
				r.SetBehavior(2, adversary.WithholdPublications())
			},
		},
		{
			name: "never claim",
			d:    graphgen.ThreeWay(),
			apply: func(s *core.Setup, r *core.Runner) {
				r.SetBehavior(1, adversary.NoClaim())
			},
		},
		{
			name: "last-moment unlocks",
			d:    graphgen.ThreeWay(),
			apply: func(s *core.Setup, r *core.Runner) {
				r.SetBehavior(2, adversary.LastMomentUnlocker())
			},
		},
		{
			name: "two-member coalition, drops+shares",
			d:    graphgen.TwoLeaderTriangle(),
			apply: func(s *core.Setup, r *core.Runner) {
				for v, b := range adversary.Coalition(adversary.CoalitionConfig{
					Setup: s, Members: []digraph.Vertex{0, 2}, Seed: 11, DropProb: 0.5, HaltProb: 0,
				}) {
					r.SetBehavior(v, b)
				}
			},
		},
	}
	for _, sc := range scenarios {
		cfg := core.Config{Kind: sc.kind, Delta: 10, Start: 100, Rand: rand.New(rand.NewSource(5))}
		if cfg.Kind == 0 {
			cfg.Kind = core.KindGeneral
		}
		setup, err := core.NewSetup(sc.d, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		r := core.NewRunner(setup, core.Options{Seed: 6})
		sc.apply(setup, r)
		res, err := r.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		safe := true
		for _, v := range res.Conforming {
			if res.Report.Of(v) == outcome.Underwater {
				safe = false
			}
		}
		deviators := sc.d.NumVertices() - len(res.Conforming)
		t.AddRow(sc.name, sc.d.String(), deviators, outcomeLine(setup.Spec, res), safe)
	}
	t.Notes = append(t.Notes, "deviators may end Underwater (their own fault) — conforming parties never do")
	return t, nil
}

func outcomeLine(spec *core.Spec, res *core.Result) string {
	s := ""
	for _, v := range spec.D.Vertices() {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("%s:%v", spec.PartyOf(v), res.Report.Of(v))
	}
	return s
}

// E6NonStronglyConnected demonstrates Lemma 3.4 / Theorem 3.5: on a
// non-strongly-connected digraph no uniform protocol is atomic — the X
// side free-rides structurally.
func E6NonStronglyConnected() (*Table, error) {
	d := graphgen.NotStronglyConnected(3, 3)
	setup, err := core.NewSetup(d, core.Config{AllowUnsafe: true, Rand: rand.New(rand.NewSource(8))})
	if err != nil {
		return nil, err
	}
	res, err := core.NewRunner(setup, core.Options{Seed: 8}).Run()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E6",
		Title:   "Lemma 3.4: non-strongly-connected digraph (X cycle → Y cycle, one bridge arc)",
		Columns: []string{"party", "side", "outcome"},
	}
	for _, v := range d.Vertices() {
		side := "X"
		if int(v) >= 3 {
			side = "Y"
		}
		t.AddRow(setup.Spec.PartyOf(v), side, res.Report.Of(v))
	}
	t.Notes = append(t.Notes,
		"X0 ends Discount without deviating at all: the digraph shape itself breaks uniformity, so such swaps are rejected by Validate (Theorem 3.5)")
	return t, nil
}

// E7LeadersNotFVS demonstrates Theorem 4.12: with leaders that are not a
// feedback vertex set, Phase One deadlocks on the leaderless cycle and
// every deployed contract refunds.
func E7LeadersNotFVS() (*Table, error) {
	d := graphgen.TwoLeaderTriangle()
	setup, err := core.NewSetup(d, core.Config{
		Leaders: []digraph.Vertex{0}, AllowUnsafe: true,
		Delta: 10, Start: 100, Rand: rand.New(rand.NewSource(9)),
	})
	if err != nil {
		return nil, err
	}
	runner := core.NewRunner(setup, core.Options{Seed: 9})
	res, err := runner.Run()
	if err != nil {
		return nil, err
	}
	published := len(res.Log.OfKind(trace.KindContractPublished))
	refunded := len(res.Log.OfKind(trace.KindRefunded))
	t := &Table{
		ID:      "E7",
		Title:   "Theorem 4.12: leaders {A} on the two-leader triangle (not an FVS)",
		Columns: []string{"arcs", "contracts published", "refunded", "unlocked", "all NoDeal", "waits-for cycle"},
	}
	allNoDeal := true
	for _, v := range d.Vertices() {
		if res.Report.Of(v) != outcome.NoDeal {
			allNoDeal = false
		}
	}
	cycle := setup.Spec.DeadlockCycle(runner.PublishedArcs())
	cycleStr := "none"
	if cycle != nil {
		cycleStr = ""
		for i, v := range cycle {
			if i > 0 {
				cycleStr += ">"
			}
			cycleStr += d.Name(v)
		}
	}
	t.AddRow(d.NumArcs(), published, refunded, len(res.Log.OfKind(trace.KindUnlocked)), allNoDeal, cycleStr)
	t.Notes = append(t.Notes,
		"the detected waits-for cycle is the theorem's proof object: no vertex on it ever reaches indegree zero, so Phase One stalls and every escrow refunds")
	return t, nil
}

// E8SingleLeaderStaircase reproduces Figure 6 (left) and Section 4.6: the
// timeout staircase on single-leader digraphs.
func E8SingleLeaderStaircase() (*Table, error) {
	d := graphgen.ThreeWay()
	setup, err := core.NewSetup(d, core.Config{
		Kind: core.KindSingleLeader, Delta: 10, Start: 100,
		Rand: rand.New(rand.NewSource(10)),
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E8",
		Title:   "Figure 6 / Section 4.6: single-leader timeout staircase (diam + D(v, leader) + 1)·Δ",
		Columns: []string{"arc", "counterparty v", "D(v, leader)", "timeout (Δ after start)"},
	}
	dist, _ := d.LongestPathsToSink(setup.Spec.Leaders[0])
	for id := 0; id < d.NumArcs(); id++ {
		arc := d.Arc(id)
		t.AddRow(
			fmt.Sprintf("%s->%s", d.Name(arc.Head), d.Name(arc.Tail)),
			d.Name(arc.Tail), dist[arc.Tail],
			vtime.InDelta(setup.Spec.HTLCTimeout(id).Sub(setup.Spec.Start), setup.Spec.Delta))
	}
	res, err := core.NewRunner(setup, core.Options{Seed: 10}).Run()
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("protocol completes with plain HTLCs, no signatures: AllDeal=%v", res.Report.AllDeal()),
		"on the two-leader triangle no such staircase exists (Figure 6, right): every single-vertex deletion leaves a cycle — see E7")
	return t, nil
}
