package expt

import (
	"fmt"
	"math/rand"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/baseline"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/pebble"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// E9Figure7Hashkeys enumerates the hashkey paths of the two-leader
// triangle, reproducing Figure 7's per-arc hashkey sets with their
// path-dependent deadlines.
func E9Figure7Hashkeys() (*Table, error) {
	d := graphgen.TwoLeaderTriangle()
	setup, err := core.NewSetup(d, core.Config{Delta: 10, Start: 100, Rand: rand.New(rand.NewSource(12))})
	if err != nil {
		return nil, err
	}
	spec := setup.Spec
	t := &Table{
		ID:      "E9",
		Title:   "Figure 7: hashkey paths per arc of the two-leader triangle (deadline = (diam+|p|)·Δ)",
		Columns: []string{"arc", "lock (leader)", "path", "|p|", "deadline (Δ)"},
	}
	name := func(v digraph.Vertex) string { return d.Name(v) }
	for id := 0; id < d.NumArcs(); id++ {
		arc := d.Arc(id)
		for i, leader := range spec.Leaders {
			for _, p := range d.AllSimplePaths(arc.Tail, leader, 0) {
				pathStr := ""
				for j, v := range p {
					if j > 0 {
						pathStr += ">"
					}
					pathStr += name(v)
				}
				deadline := vtime.Scale(spec.DiamBound+p.Len(), spec.Delta)
				t.AddRow(
					fmt.Sprintf("%s->%s", name(arc.Head), name(arc.Tail)),
					fmt.Sprintf("s_%s", name(leader)),
					pathStr, p.Len(), vtime.InDelta(deadline, spec.Delta))
			}
			_ = i
		}
	}
	t.Notes = append(t.Notes,
		"every arc carries the full two-lock vector; each lock accepts one hashkey per simple path from the arc's counterparty to the lock's leader — exactly the s_A/s_B sets of Figure 7")
	return t, nil
}

// E10PebbleGames verifies Lemmas 4.1–4.3 (Figure 8's dynamics): both
// pebble games finish within diam(D) rounds, and the protocol's measured
// phase timings coincide with the games'.
func E10PebbleGames() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "Lemmas 4.1–4.3 / Figure 8: pebble-game rounds vs diam(D), and protocol phase timing",
		Columns: []string{"digraph", "diam", "lazy rounds", "max eager rounds", "deploy span (Δ)", "phase-2 span (Δ)", "≤ diam"},
	}
	for _, f := range sweepFamilies() {
		setup, res, err := conformingRun(f.d, core.Config{}, 13)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f.name, err)
		}
		leaders := setup.Spec.Leaders
		lazy := pebble.Lazy(f.d, leaders)
		eagerMax := 0
		dt := f.d.Transpose()
		for _, l := range leaders {
			if e := pebble.Eager(dt, l); e.Rounds > eagerMax {
				eagerMax = e.Rounds
			}
		}
		diam := setup.Spec.DiamBound
		firstPub, _ := res.Log.First(trace.KindContractPublished)
		lastPub, _ := res.Log.Last(trace.KindContractPublished)
		firstUn, _ := res.Log.First(trace.KindUnlocked)
		lastUn, _ := res.Log.Last(trace.KindUnlocked)
		t.AddRow(f.name, diam, lazy.Rounds, eagerMax,
			vtime.InDelta(lastPub.At.Sub(firstPub.At), setup.Spec.Delta),
			vtime.InDelta(lastUn.At.Sub(firstUn.At), setup.Spec.Delta),
			lazy.Rounds <= diam && eagerMax <= diam)
	}
	t.Notes = append(t.Notes,
		"Phase One is the lazy game, Phase Two the eager game per secret on the transpose; measured spans equal the game round counts in Δ")
	return t, nil
}

// E11TimeoutAttacks contrasts the three designs under the Section 1
// last-moment-reveal attack and the sequential-settlement defection.
func E11TimeoutAttacks() (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Section 1 attacks: who survives a last-moment reveal / a defector",
		Columns: []string{"protocol", "attack", "victim outcome", "atomic"},
	}
	d := graphgen.ThreeWay()

	// Uniform timeouts + last-moment reveal: Bob stranded.
	{
		setup, err := core.NewSetup(d, core.Config{
			Kind: core.KindUniformTimeout, Delta: 10, Start: 100,
			Rand: rand.New(rand.NewSource(14)),
		})
		if err != nil {
			return nil, err
		}
		r := core.NewRunner(setup, core.Options{Seed: 14})
		r.SetBehavior(2, adversary.LastMomentRedeemer())
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		bob := res.Report.Of(1)
		t.AddRow("uniform-timeout HTLCs (broken baseline)", "Carol reveals at last moment", "Bob: "+bob.String(), bob != outcome.Underwater)
	}
	// Staircase timeouts + same attack: Bob fine.
	{
		setup, err := core.NewSetup(d, core.Config{
			Kind: core.KindSingleLeader, Delta: 10, Start: 100,
			Rand: rand.New(rand.NewSource(15)),
		})
		if err != nil {
			return nil, err
		}
		r := core.NewRunner(setup, core.Options{Seed: 15})
		r.SetBehavior(2, adversary.LastMomentRedeemer())
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		bob := res.Report.Of(1)
		t.AddRow("single-leader staircase (Section 4.6)", "Carol reveals at last moment", "Bob: "+bob.String(), bob != outcome.Underwater)
	}
	// General hashkey protocol + last-moment unlocks: everyone fine.
	{
		setup, err := core.NewSetup(d, core.Config{
			Delta: 10, Start: 100, Rand: rand.New(rand.NewSource(16)),
		})
		if err != nil {
			return nil, err
		}
		r := core.NewRunner(setup, core.Options{Seed: 16})
		r.SetBehavior(2, adversary.LastMomentUnlocker())
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		bob := res.Report.Of(1)
		t.AddRow("general hashkey protocol (Section 4.5)", "Carol unlocks at deadlines", "Bob: "+bob.String(), bob != outcome.Underwater)
	}
	// Sequential plain transfers + defector: Alice stranded.
	{
		res, err := baseline.Sequential(d, baseline.DefaultAssets(d), baseline.PartyNames(d), 10,
			map[digraph.Vertex]bool{2: true})
		if err != nil {
			return nil, err
		}
		alice := res.Report.Of(0)
		t.AddRow("sequential plain transfers (baseline)", "Carol keeps the title", "Alice: "+alice.String(), alice != outcome.Underwater)
	}
	t.Notes = append(t.Notes,
		"the two baselines strand a conforming party; both paper protocols absorb the attack — the staircase/hashkey deadlines are the whole trick")
	return t, nil
}

// E12GriefingLockup measures the Section 5 DoS: how long assets stay
// locked when a party aborts at each phase boundary.
func E12GriefingLockup() (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Section 5 griefing: asset lockup when a party aborts at each phase point",
		Columns: []string{"abort at", "contracts published", "refunds", "last refund (Δ after start)", "bound 2·diam·Δ+1"},
	}
	d := graphgen.ThreeWay()
	for haltDelta := 0; haltDelta <= 4; haltDelta++ {
		setup, err := core.NewSetup(d, core.Config{
			Delta: 10, Start: 100, Rand: rand.New(rand.NewSource(int64(17 + haltDelta))),
		})
		if err != nil {
			return nil, err
		}
		r := core.NewRunner(setup, core.Options{Seed: int64(17 + haltDelta)})
		haltAt := setup.Spec.Start.Add(vtime.Scale(haltDelta, setup.Spec.Delta)).Add(5)
		r.SetBehavior(2, adversary.HaltAt(core.NewConforming(), haltAt))
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		refunds := res.Log.OfKind(trace.KindRefunded)
		lastRefund := "-"
		if last, ok := res.Log.Last(trace.KindRefunded); ok {
			lastRefund = vtime.InDelta(last.At.Sub(setup.Spec.Start), setup.Spec.Delta)
		}
		bound := vtime.InDelta(vtime.Scale(2*setup.Spec.DiamBound, setup.Spec.Delta)+1, setup.Spec.Delta)
		t.AddRow(fmt.Sprintf("T+%dΔ+ε", haltDelta),
			len(res.Log.OfKind(trace.KindContractPublished)), len(refunds), lastRefund, bound)
	}
	t.Notes = append(t.Notes,
		"a griefing counterparty can lock assets for at most 2·diam·Δ (+1 tick) before refunds release them — the bounded-escrow property")
	return t, nil
}

// E13RecurrentSwaps measures the Section 5 recurrent extension: hashlocks
// for round r+1 distributed during round r remove the inter-round gap.
func E13RecurrentSwaps() (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Section 5: recurrent swaps — piggybacked hashlock distribution vs re-clearing",
		Columns: []string{"mode", "rounds", "all Deal", "total (Δ)", "avg per round (Δ)"},
	}
	d := graphgen.ThreeWay()
	const rounds = 5
	for _, piggy := range []bool{true, false} {
		res, err := core.RunRecurrent(d, rounds, piggy, rand.New(rand.NewSource(18)), 18)
		if err != nil {
			return nil, err
		}
		all := true
		for _, r := range res.Rounds {
			all = all && r.AllDeal
		}
		mode := "re-clearing gap (2Δ per round)"
		if piggy {
			mode = "piggybacked (Phase Two carries next locks)"
		}
		t.AddRow(mode, rounds, all,
			vtime.InDelta(res.TotalTicks, core.DefaultDelta),
			vtime.InDelta(res.TotalTicks/vtime.Duration(rounds), core.DefaultDelta))
	}
	return t, nil
}

// E14FeedbackVertexSets compares the exact minimum FVS with the greedy
// heuristic (Section 5 notes minimum FVS is NP-complete).
func E14FeedbackVertexSets() (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Section 5: leader selection — exact minimum FVS vs greedy heuristic",
		Columns: []string{"digraph", "|V|", "|A|", "exact |L|", "greedy |L|", "optimal"},
	}
	for _, f := range sweepFamilies() {
		exact := f.d.ExactMinFVS()
		greedy := f.d.GreedyFVS()
		t.AddRow(f.name, f.d.NumVertices(), f.d.NumArcs(), len(exact), len(greedy),
			len(greedy) == len(exact))
	}
	t.Notes = append(t.Notes,
		"fewer leaders mean fewer hashlocks per contract and less unlock traffic (see E4); the greedy heuristic is optimal on all these families except occasionally dense random graphs")
	return t, nil
}

// E15BroadcastShortCircuit measures the Section 4.5 optimization: Phase
// Two becomes constant-time with a shared broadcast chain.
func E15BroadcastShortCircuit() (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Section 4.5: Phase Two span without vs with the broadcast chain",
		Columns: []string{"digraph", "diam", "phase-2 span plain (Δ)", "phase-2 span broadcast (Δ)"},
	}
	for _, n := range []int{4, 6, 8, 12} {
		span := func(bc bool) (string, error) {
			setup, res, err := conformingRun(graphgen.Cycle(n), core.Config{Broadcast: bc}, int64(20+n))
			if err != nil {
				return "", err
			}
			if !res.Report.AllDeal() {
				return "", fmt.Errorf("cycle-%d bc=%v: not AllDeal", n, bc)
			}
			first, _ := res.Log.First(trace.KindSecretRevealed)
			last, _ := res.Log.Last(trace.KindUnlocked)
			return vtime.InDelta(last.At.Sub(first.At), setup.Spec.Delta), nil
		}
		plain, err := span(false)
		if err != nil {
			return nil, err
		}
		bc, err := span(true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("cycle-%d", n), n-1, plain, bc)
	}
	t.Notes = append(t.Notes,
		"plain Phase Two walks the transpose (O(diam)); the broadcast chain short-circuits it to one Δ regardless of size — but cannot replace the per-arc protocol (a deviating leader might broadcast nothing)")
	return t, nil
}

// E16Multigraph runs the Section 5 multigraph extension: parallel arcs
// between the same parties, each with its own contract.
func E16Multigraph() (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Section 5: directed multigraph — parallel arcs, one contract each",
		Columns: []string{"parallel arcs", "|A|", "all Deal", "unlock calls"},
	}
	for _, k := range []int{2, 3, 5} {
		_, res, err := conformingRun(graphgen.MultiArcPair(k), core.Config{}, int64(21+k))
		if err != nil {
			return nil, err
		}
		t.AddRow(k, k+1, res.Report.AllDeal(), res.Counters.UnlockCalls)
	}
	return t, nil
}
