package baseline

import (
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
)

func TestSequentialAllHonest(t *testing.T) {
	d := graphgen.ThreeWay()
	res, err := Sequential(d, DefaultAssets(d), PartyNames(d), 10, nil)
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	if !res.Report.AllDeal() {
		t.Error("honest sequential settlement should reach AllDeal")
	}
	// One transfer per Δ: 3 arcs -> 3Δ.
	if res.Duration != 30 {
		t.Errorf("duration = %d, want 30", res.Duration)
	}
}

func TestSequentialDefectorStrandsPredecessor(t *testing.T) {
	// Carol receives from Bob, then never sends the title: Bob paid and
	// got paid (Deal)... while Alice paid Bob and received nothing.
	d := graphgen.ThreeWay()
	defectors := map[digraph.Vertex]bool{2: true} // Carol
	res, err := Sequential(d, DefaultAssets(d), PartyNames(d), 10, defectors)
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	if res.Report.AllDeal() {
		t.Fatal("defection must break the deal")
	}
	if got := res.Report.Of(0); got != outcome.Underwater {
		t.Errorf("Alice = %v, want Underwater — sequential settlement is not atomic", got)
	}
	if got := res.Report.Of(2); got != outcome.FreeRide {
		t.Errorf("defecting Carol = %v, want FreeRide", got)
	}
}

func TestSequentialEarlyDefectorIsNoDeal(t *testing.T) {
	// If the very first payer defects nothing moves: all NoDeal — the
	// baseline only fails once value is mid-flight.
	d := graphgen.ThreeWay()
	res, err := Sequential(d, DefaultAssets(d), PartyNames(d), 10, map[digraph.Vertex]bool{0: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Vertices() {
		if got := res.Report.Of(v); got == outcome.Underwater {
			t.Errorf("%s underwater on first-payer defection", d.Name(v))
		}
	}
}

func TestSequentialShapeErrors(t *testing.T) {
	d := graphgen.ThreeWay()
	if _, err := Sequential(d, nil, PartyNames(d), 10, nil); err == nil {
		t.Error("missing assets should error")
	}
	if _, err := Sequential(d, DefaultAssets(d), nil, 10, nil); err == nil {
		t.Error("missing parties should error")
	}
}

func TestSequentialLargerCycle(t *testing.T) {
	d := graphgen.Cycle(6)
	res, err := Sequential(d, DefaultAssets(d), PartyNames(d), 10, map[digraph.Vertex]bool{4: true})
	if err != nil {
		t.Fatal(err)
	}
	// P4 keeps P3's payment; honest P5 then refuses to pay P0, so P0 —
	// who paid P1 at the start — is stranded Underwater.
	if got := res.Report.Of(0); got != outcome.Underwater {
		t.Errorf("P0 = %v, want Underwater", got)
	}
	if got := res.Report.Of(4); got != outcome.FreeRide {
		t.Errorf("defecting P4 = %v, want FreeRide", got)
	}
}
