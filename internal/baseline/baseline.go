// Package baseline implements the non-atomic ways people exchanged assets
// before (and without) the paper's protocol, as comparison points for the
// experiments:
//
//   - Sequential: the arcs are settled one after another as plain,
//     unconditional transfers. Nothing protects a party that has paid
//     from a successor who stops paying — the folk "just wire it" scheme.
//
// The uniform-timeout HTLC protocol (the other baseline the paper's
// Section 1 dismantles) lives in core as KindUniformTimeout, since it
// shares the contract machinery.
package baseline

import (
	"fmt"
	"sort"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/sim"
	"github.com/go-atomicswap/atomicswap/internal/trace"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// SequentialResult reports a sequential-settlement run.
type SequentialResult struct {
	Triggered map[int]bool
	Report    *outcome.Report
	Log       *trace.Log
	// Duration is the ticks from first to last transfer attempt.
	Duration vtime.Duration
}

// Sequential settles the swap digraph's arcs in ID order, one plain
// transfer per Δ. Parties in defectors receive but never send: they stop
// the chain of payments cold. The function reports who ended where — on
// any cycle a single defector leaves its predecessor Underwater, which is
// exactly why the paper's protocol exists.
func Sequential(d *digraph.Digraph, assets []core.ArcAsset, parties []chain.PartyID,
	delta vtime.Duration, defectors map[digraph.Vertex]bool) (*SequentialResult, error) {
	if len(assets) != d.NumArcs() || len(parties) != d.NumVertices() {
		return nil, fmt.Errorf("baseline: %d assets for %d arcs, %d parties for %d vertexes",
			len(assets), d.NumArcs(), len(parties), d.NumVertices())
	}
	sched := sim.New(1)
	reg := chain.NewRegistry(sched)
	log := &trace.Log{}
	for id := 0; id < d.NumArcs(); id++ {
		aa := assets[id]
		if err := reg.Chain(aa.Chain).RegisterAsset(chain.Asset{ID: aa.Asset, Amount: aa.Amount},
			parties[d.Arc(id).Head]); err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
	}
	triggered := make(map[int]bool, d.NumArcs())
	order := make([]int, d.NumArcs())
	for i := range order {
		order[i] = i
	}
	sort.Ints(order)
	for i, id := range order {
		i, id := i, id
		arc := d.Arc(id)
		sched.At(vtime.Ticks(vtime.Scale(i+1, delta)), func() {
			if defectors[arc.Head] {
				log.Append(trace.Event{
					At: sched.Now(), Kind: trace.KindDeviation,
					Party: string(parties[arc.Head]), Arc: id, Lock: -1,
					Detail: "defects: keeps the asset",
				})
				return
			}
			// An honest payer only pays if everything owed to it earlier
			// in the sequence actually arrived.
			for _, prev := range order[:i] {
				if d.Arc(prev).Tail == arc.Head && !triggered[prev] {
					log.Append(trace.Event{
						At: sched.Now(), Kind: trace.KindAbandoned,
						Party: string(parties[arc.Head]), Arc: id, Lock: -1,
						Detail: "upstream payment missing; not paying",
					})
					return
				}
			}
			aa := assets[id]
			if err := reg.Chain(aa.Chain).Transfer(parties[arc.Head], aa.Asset, parties[arc.Tail]); err != nil {
				log.Append(trace.Event{
					At: sched.Now(), Kind: trace.KindUnlockFailed,
					Party: string(parties[arc.Head]), Arc: id, Lock: -1, Detail: err.Error(),
				})
				return
			}
			triggered[id] = true
			log.Append(trace.Event{
				At: sched.Now(), Kind: trace.KindClaimed,
				Party: string(parties[arc.Tail]), Arc: id, Lock: -1, Detail: "plain transfer",
			})
		})
	}
	end := sched.Run()
	return &SequentialResult{
		Triggered: triggered,
		Report:    outcome.NewReport(d, triggered),
		Log:       log,
		Duration:  end.Sub(0),
	}, nil
}

// DefaultAssets builds the per-arc assets Sequential needs, matching
// core.NewSetup's defaults.
func DefaultAssets(d *digraph.Digraph) []core.ArcAsset {
	assets := make([]core.ArcAsset, d.NumArcs())
	for id := range assets {
		assets[id] = core.ArcAsset{
			Chain:  fmt.Sprintf("chain-a%d", id),
			Asset:  chain.AssetID(fmt.Sprintf("asset-a%d", id)),
			Amount: 1,
		}
	}
	return assets
}

// PartyNames returns the vertex display names as party IDs.
func PartyNames(d *digraph.Digraph) []chain.PartyID {
	parties := make([]chain.PartyID, d.NumVertices())
	for v := range parties {
		parties[v] = chain.PartyID(d.Name(digraph.Vertex(v)))
	}
	return parties
}
