package sched

import (
	"sync"
	"testing"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// collect drains scheduled marks through a mutex so the race detector can
// watch the dispatcher handoff.
type collect struct {
	mu   sync.Mutex
	got  []int
	wake chan struct{}
}

func newCollect() *collect { return &collect{wake: make(chan struct{}, 64)} }

func (c *collect) mark(i int) func() {
	return func() {
		c.mu.Lock()
		c.got = append(c.got, i)
		c.mu.Unlock()
		c.wake <- struct{}{}
	}
}

func (c *collect) waitN(t *testing.T, n int) []int {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		if len(c.got) >= n {
			out := append([]int(nil), c.got...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		select {
		case <-c.wake:
		case <-deadline:
			c.mu.Lock()
			defer c.mu.Unlock()
			t.Fatalf("timed out waiting for %d events, got %v", n, c.got)
		}
	}
}

// TestVirtualDeterministicSameTickOrder pins the tie-break contract shared
// with sim.Scheduler: events at identical ticks run in scheduling order.
func TestVirtualDeterministicSameTickOrder(t *testing.T) {
	v := NewVirtual()
	defer v.Close()
	c := newCollect()

	// Hold while scheduling so the heap sees all events before any runs.
	release := v.Hold()
	for i := 0; i < 8; i++ {
		v.At(5, c.mark(i))
	}
	v.At(3, c.mark(100)) // earlier tick scheduled last still runs first
	release()

	got := c.waitN(t, 9)
	want := []int{100, 0, 1, 2, 3, 4, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if now := v.Now(); now != 5 {
		t.Fatalf("clock at %d, want 5", now)
	}
}

// TestVirtualTimerCancellation: a stopped timer never runs and does not
// advance the clock; stopping a fired timer reports false.
func TestVirtualTimerCancellation(t *testing.T) {
	v := NewVirtual()
	defer v.Close()
	c := newCollect()

	release := v.Hold()
	cancelled := v.At(50, c.mark(1))
	v.At(10, c.mark(2))
	if !cancelled.Stop() {
		t.Fatal("Stop on a pending timer must report true")
	}
	if cancelled.Stop() {
		t.Fatal("second Stop must report false")
	}
	release()

	got := c.waitN(t, 1)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got %v, want [2]", got)
	}
	if now := v.Now(); now != 10 {
		t.Fatalf("cancelled event advanced the clock to %d, want 10", now)
	}
	// A timer that already ran cannot be stopped.
	tm := v.At(11, c.mark(3))
	c.waitN(t, 2)
	if tm.Stop() {
		t.Fatal("Stop after firing must report false")
	}
}

// TestVirtualHoldPinsTime: while a hold is out, due events do not run.
func TestVirtualHoldPinsTime(t *testing.T) {
	v := NewVirtual()
	defer v.Close()
	c := newCollect()

	release := v.Hold()
	v.At(7, c.mark(1))
	time.Sleep(20 * time.Millisecond)
	c.mu.Lock()
	ran := len(c.got)
	c.mu.Unlock()
	if ran != 0 {
		t.Fatal("event ran while the clock was held")
	}
	if now := v.Now(); now != 0 {
		t.Fatalf("held clock advanced to %d", now)
	}
	release()
	release() // idempotent
	c.waitN(t, 1)
	if now := v.Now(); now != 7 {
		t.Fatalf("clock at %d, want 7", now)
	}
}

// TestVirtualCascadeBeforeAdvance: a callback scheduling at its own tick
// runs before later-tick events.
func TestVirtualCascadeBeforeAdvance(t *testing.T) {
	v := NewVirtual()
	defer v.Close()
	c := newCollect()

	release := v.Hold()
	v.At(2, func() {
		v.At(2, c.mark(1)) // same-tick cascade
		c.mark(0)()
	})
	v.At(4, c.mark(2))
	release()

	got := c.waitN(t, 3)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestVirtualCloseDropsEvents: Close stops the dispatcher; queued and
// post-Close events never run.
func TestVirtualCloseDropsEvents(t *testing.T) {
	v := NewVirtual()
	c := newCollect()
	release := v.Hold()
	v.At(1, c.mark(1))
	v.Close()
	release()
	if tm := v.At(2, c.mark(2)); tm.Stop() {
		t.Fatal("post-Close timer claims it was stoppable")
	}
	time.Sleep(10 * time.Millisecond)
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.got) != 0 {
		t.Fatalf("events ran after Close: %v", c.got)
	}
	v.Close() // idempotent
}

// TestVirtualConcurrentSchedulers hammers At/Stop/Hold from many
// goroutines; run under -race this is the thread-safety proof.
func TestVirtualConcurrentSchedulers(t *testing.T) {
	v := NewVirtual()
	defer v.Close()
	var ran sync.WaitGroup
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				release := v.Hold()
				ran.Add(1)
				tm := v.At(vtime.Ticks(g*200+i), func() { ran.Done() })
				if i%3 == 0 {
					if tm.Stop() {
						ran.Done()
					}
				}
				release()
			}
		}()
	}
	wg.Wait()
	done := make(chan struct{})
	go func() { ran.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("scheduled events did not drain")
	}
}

func TestRealSchedulerBasics(t *testing.T) {
	r := NewReal(time.Millisecond)
	if r.Tick() != time.Millisecond {
		t.Fatalf("tick %v", r.Tick())
	}
	start := r.Now()
	ch := make(chan vtime.Ticks, 1)
	r.At(start+3, func() { ch <- r.Now() })
	select {
	case at := <-ch:
		if at < start+2 {
			t.Fatalf("fired at %d, target %d", at, start+3)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("real timer never fired")
	}
	// Hold is a documented no-op.
	r.Hold()()
	// Past-tick scheduling fires immediately.
	r.At(0, func() { ch <- r.Now() })
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("past-tick timer never fired")
	}
	// Cancellation before the due time.
	tm := r.At(r.Now()+1000, func() { t.Error("cancelled real timer ran") })
	if !tm.Stop() {
		t.Fatal("Stop on pending real timer must report true")
	}
}

func TestLatencyProbe(t *testing.T) {
	p := NewLatencyProbe()
	if s := p.Snapshot(); s.Samples != 0 || s.EstimateTicks() != 0 {
		t.Fatalf("fresh probe: %+v", s)
	}
	p.Observe(-5) // clamps to 0
	p.Observe(2)
	p.Observe(2)
	p.Observe(10)
	s := p.TakeWindow()
	if s.Samples != 4 {
		t.Fatalf("samples %d", s.Samples)
	}
	if s.WindowMax != 10 {
		t.Fatalf("window max %d", s.WindowMax)
	}
	if est := s.EstimateTicks(); est != 10 {
		t.Fatalf("estimate %d, want window max 10", est)
	}
	// Window max resets; EWMA persists.
	s2 := p.Snapshot()
	if s2.WindowMax != 0 {
		t.Fatalf("window max after TakeWindow: %d", s2.WindowMax)
	}
	if s2.EWMA <= 0 {
		t.Fatalf("ewma lost: %f", s2.EWMA)
	}
}
