// Package sched is the unified pluggable time layer of the swap system.
//
// The paper's protocol is specified entirely in Δ-scaled virtual time; the
// repo historically realized that model twice — the discrete-event heap in
// internal/sim and the WallClock + time.AfterFunc machinery in internal/conc
// — with incompatible APIs. This package extracts the one abstraction both
// need: a Scheduler that tells the current virtual tick and runs callbacks
// at future ticks, with cancellable timers and no sleeping.
//
// Three implementations exist:
//
//   - sim.Scheduler: the single-threaded deterministic event loop the
//     simulator and core.Runner drive (it implements sched.Scheduler).
//   - Real: virtual ticks mapped onto wall-clock time (tick = a configured
//     wall duration), timers backed by time.AfterFunc. This is the
//     production shape of the concurrent runtime.
//   - Virtual: a concurrent event-driven scheduler whose clock advances as
//     fast as callbacks drain — goroutine-backed runtimes become CPU-bound
//     instead of wall-clock-bound, so thousand-swap engine loads clear in
//     milliseconds. It dispatches in one of three modes: serialized
//     (NewVirtual — same-tick events in schedule order, fully
//     deterministic), concurrent (NewVirtualConcurrent — one goroutine per
//     same-tick event, racy ordering), or striped-parallel
//     (NewVirtualParallel — same-tick events partitioned by caller-supplied
//     stripe key onto a worker pool with a per-tick barrier, so
//     deterministic runs use every core).
//
// The Hold mechanism is what makes Virtual safe under real concurrency:
// any in-flight work (a delivery sitting in a party mailbox, a runtime
// mid-setup) holds the clock still, so virtual time never jumps past a
// deadline while the action that should beat the deadline is still queued.
package sched

import (
	"container/heap"
	"math"
	"sync"
	"time"

	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Timer is a scheduled callback that can be cancelled before it runs.
type Timer interface {
	// Stop cancels the timer. It reports whether the cancellation
	// prevented the callback from running (false if it already ran or was
	// already stopped).
	Stop() bool
}

// Scheduler is the pluggable time source and timer service shared by every
// runtime. Implementations are safe for concurrent use unless documented
// otherwise (sim.Scheduler is single-threaded by design).
type Scheduler interface {
	vtime.Clock

	// At schedules fn to run at virtual tick t. Scheduling at or before
	// the current tick runs fn as soon as possible; time never moves
	// backwards. fn runs on an implementation-chosen goroutine and must
	// not block indefinitely.
	At(t vtime.Ticks, fn func()) Timer

	// Hold pins virtual time: while any hold is outstanding the clock
	// does not advance past due timers' ticks. The returned release
	// function must be called exactly once; it is idempotent. Real
	// schedulers (where time advances on its own) return a no-op.
	Hold() func()
}

// KeyedScheduler is implemented by schedulers that can partition same-tick
// events by a caller-supplied stripe key. Events sharing a key execute
// serialized in scheduling order; events with different keys may execute
// concurrently (NewVirtualParallel) or are simply interleaved in schedule
// order (every other mode). Key 0 means "unkeyed" and forms its own serial
// stripe.
type KeyedScheduler interface {
	Scheduler
	// AtKeyed is At with a stripe key.
	AtKeyed(t vtime.Ticks, key uint64, fn func()) Timer
}

// SerialDispatcher is implemented by schedulers whose dispatch preserves a
// serialization guarantee strong enough for inline delivery execution:
// events sharing a stripe key (or everything, for a fully serialized
// scheduler) never run concurrently, and scheduling order within a stripe
// is execution order. The conc runtime uses it to decide whether
// synchronous deliveries may bypass party mailboxes.
type SerialDispatcher interface {
	// SerializedDispatch reports whether same-stripe events are serialized
	// in scheduling order.
	SerializedDispatch() bool
}

// ---------------------------------------------------------------------------
// Real: wall-clock-backed scheduler.

// Real maps virtual ticks onto wall-clock time: one virtual tick per
// configured wall duration, timers backed by time.AfterFunc. It replaces
// the former conc.WallClock plus the ad-hoc per-run timer machinery.
type Real struct {
	start time.Time
	tick  time.Duration
}

// DefaultTick is the default wall duration of one virtual tick.
const DefaultTick = 2 * time.Millisecond

// NewReal starts a real-time scheduler ticking now, one virtual tick per
// tick of wall time (DefaultTick if tick <= 0).
func NewReal(tick time.Duration) *Real {
	if tick <= 0 {
		tick = DefaultTick
	}
	return &Real{start: time.Now(), tick: tick}
}

// Now returns the current virtual tick.
func (r *Real) Now() vtime.Ticks {
	return vtime.Ticks(time.Since(r.start) / r.tick)
}

// Tick returns the wall duration of one virtual tick.
func (r *Real) Tick() time.Duration { return r.tick }

// Until returns the wall duration from now until virtual tick t (negative
// if t has passed).
func (r *Real) Until(t vtime.Ticks) time.Duration {
	return time.Until(r.start.Add(time.Duration(t) * r.tick))
}

// At implements Scheduler using time.AfterFunc.
func (r *Real) At(t vtime.Ticks, fn func()) Timer {
	d := r.Until(t)
	if d < 0 {
		d = 0
	}
	return realTimer{time.AfterFunc(d, fn)}
}

// Hold implements Scheduler. Wall time cannot be held; callers relying on
// holds for correctness must budget jitter margins instead (see the conc
// runtime's quarter-Δ delivery margin).
func (r *Real) Hold() func() { return func() {} }

type realTimer struct{ t *time.Timer }

func (rt realTimer) Stop() bool { return rt.t.Stop() }

// ---------------------------------------------------------------------------
// Virtual: event-driven scheduler for concurrent runtimes.

// vevent states.
const (
	vePending = iota
	veFired
	veStopped
)

type vevent struct {
	at vtime.Ticks
	// prio orders events within a tick: all prio-0 events of a tick run
	// before any prio-1 (tail) event. The clearing engine schedules its
	// clearing pass at tail priority so it observes the same
	// whole-tick-drained queue in serialized and parallel modes.
	prio  int8
	seq   int64
	key   uint64
	fn    func()
	state int
}

type veventHeap []*vevent

func (h veventHeap) Len() int { return len(h) }
func (h veventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h veventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *veventHeap) Push(x any)   { *h = append(*h, x.(*vevent)) }
func (h *veventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Virtual is a thread-safe discrete-event scheduler whose clock advances
// only when nothing holds it: a dispatcher goroutine pops the earliest
// event once every outstanding hold is released, jumps the clock to it,
// and runs the callback (itself counted as a hold, so cascades triggered
// by a callback all land before time moves again). Same-tick events run
// in scheduling order, serialized on the dispatcher — unless built with
// NewVirtualConcurrent, which trades that determinism for multicore
// throughput.
//
// Create with NewVirtual and Close when done to stop the dispatcher.
type Virtual struct {
	mu     sync.Mutex
	cond   *sync.Cond
	now    vtime.Ticks
	seq    int64
	queue  veventHeap
	holds  int
	closed bool
	// concurrent dispatches all events of one tick in parallel instead of
	// in scheduling order.
	concurrent bool
	// workers > 0 selects striped-parallel dispatch: each (tick, prio)
	// batch is partitioned by stripe key onto the worker pool, serialized
	// in scheduling order within each stripe, with a barrier before the
	// clock moves on.
	workers int
	workCh  chan []*vevent
	workWG  sync.WaitGroup
	done    chan struct{}
}

// NewVirtual returns a running virtual-time scheduler starting at tick 0.
// Same-tick events run serialized in scheduling order (deterministic,
// like sim.Scheduler).
func NewVirtual() *Virtual {
	v := &Virtual{done: make(chan struct{})}
	v.cond = sync.NewCond(&v.mu)
	go v.loop()
	return v
}

// NewVirtualConcurrent returns a virtual scheduler that runs all events
// of one tick concurrently, each on its own goroutine, and advances only
// when the whole tick (and everything it holds) has drained. Same-tick
// ordering becomes racy — exactly as racy as the real-time scheduler —
// in exchange for spreading callback work (contract crypto above all)
// across cores. This is the clearing engine's virtual mode.
func NewVirtualConcurrent() *Virtual {
	v := &Virtual{concurrent: true, done: make(chan struct{})}
	v.cond = sync.NewCond(&v.mu)
	go v.loop()
	return v
}

// NewVirtualParallel returns a virtual scheduler that partitions each
// (tick, priority) batch of events by stripe key (see AtKeyed) onto a pool
// of `workers` goroutines. Events sharing a stripe run serialized in
// scheduling order on one worker; distinct stripes run concurrently. The
// dispatcher barriers on the whole batch (holds) before the clock advances,
// so per-stripe state machines observe exactly the serialized schedule
// while independent stripes — independent swaps, in the engine — use every
// core. With workers <= 1 this degenerates to NewVirtual.
func NewVirtualParallel(workers int) *Virtual {
	if workers <= 1 {
		return NewVirtual()
	}
	v := &Virtual{
		workers: workers,
		workCh:  make(chan []*vevent, workers*4),
		done:    make(chan struct{}),
	}
	v.cond = sync.NewCond(&v.mu)
	v.workWG.Add(workers)
	for i := 0; i < workers; i++ {
		go v.worker()
	}
	go v.loop()
	return v
}

// worker drains stripes: each stripe's events run in order, then the whole
// stripe's holds release at once.
func (v *Virtual) worker() {
	defer v.workWG.Done()
	for stripe := range v.workCh {
		for _, e := range stripe {
			e.fn()
		}
		v.releaseN(len(stripe))
	}
}

// Now implements vtime.Clock.
func (v *Virtual) Now() vtime.Ticks {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// At implements Scheduler. After Close the callback is silently dropped.
func (v *Virtual) At(t vtime.Ticks, fn func()) Timer {
	return v.schedule(t, 0, 0, fn)
}

// AtKeyed implements KeyedScheduler: fn joins the stripe identified by key
// at tick t. Under NewVirtualParallel same-stripe events are serialized in
// scheduling order and distinct stripes run concurrently; under the other
// modes the key is recorded but dispatch is unchanged. Key 0 is the shared
// unkeyed stripe.
func (v *Virtual) AtKeyed(t vtime.Ticks, key uint64, fn func()) Timer {
	return v.schedule(t, 0, key, fn)
}

// AtTail schedules fn at tail priority: it runs only after every normal
// event of tick t (including cascades scheduled for t while the tick is
// draining) has run. The clearing engine uses it so its per-tick clearing
// pass observes the same fully-drained queue in every dispatch mode.
func (v *Virtual) AtTail(t vtime.Ticks, fn func()) Timer {
	return v.schedule(t, 1, 0, fn)
}

// AtTailN schedules fn at tail level `level` (≥ 1) with a stripe key.
// Levels extend AtTail into a ladder: all events of level k at tick t run
// (and fully drain, cascades included) before any event of level k+1, and
// within one level distinct stripe keys may run concurrently under
// striped-parallel dispatch. The sharded engine uses the ladder to order
// one tick's phases — protocol events (level 0, via At/AtKeyed), per-shard
// clearing (level 1, keyed by shard), the cross-shard escalation sweep
// (level 2), and coordinator clearing (level 3) — with a determinism
// barrier between each phase.
func (v *Virtual) AtTailN(t vtime.Ticks, level int8, key uint64, fn func()) Timer {
	if level < 1 {
		level = 1
	}
	return v.schedule(t, level, key, fn)
}

func (v *Virtual) schedule(t vtime.Ticks, prio int8, key uint64, fn func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return stoppedTimer{}
	}
	if t < v.now {
		t = v.now
	}
	v.seq++
	e := &vevent{at: t, prio: prio, seq: v.seq, key: key, fn: fn}
	heap.Push(&v.queue, e)
	v.cond.Broadcast()
	return &virtualTimer{v: v, e: e}
}

// SerializedDispatch implements SerialDispatcher: serialized and
// striped-parallel modes both guarantee same-stripe events never run
// concurrently and execute in scheduling order; concurrent mode does not.
func (v *Virtual) SerializedDispatch() bool { return !v.concurrent }

// Hold implements Scheduler: time stands still until the returned release
// is called. Safe to call from callbacks and from external goroutines.
func (v *Virtual) Hold() func() {
	v.mu.Lock()
	v.holds++
	v.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			v.mu.Lock()
			v.holds--
			v.cond.Broadcast()
			v.mu.Unlock()
		})
	}
}

// Pending reports the number of queued (non-cancelled) events.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, e := range v.queue {
		if e.state == vePending {
			n++
		}
	}
	return n
}

// Close stops the dispatcher; queued events never run. Idempotent.
func (v *Virtual) Close() {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return
	}
	v.closed = true
	v.cond.Broadcast()
	v.mu.Unlock()
	<-v.done
}

func (v *Virtual) loop() {
	for {
		v.mu.Lock()
		for !v.closed && (v.holds > 0 || len(v.queue) == 0) {
			v.cond.Wait()
		}
		if v.closed {
			v.mu.Unlock()
			if v.workCh != nil {
				close(v.workCh)
				v.workWG.Wait()
			}
			close(v.done)
			return
		}
		if v.workers > 1 {
			v.dispatchStriped()
			continue
		}
		if !v.concurrent {
			e := heap.Pop(&v.queue).(*vevent)
			if e.state != vePending {
				v.mu.Unlock() // cancelled: discard without advancing time
				continue
			}
			e.state = veFired
			if e.at > v.now {
				v.now = e.at
			}
			// The running callback holds the clock: everything it schedules
			// at the current tick (or enqueues behind a Hold of its own)
			// settles before time advances again.
			v.holds++
			v.mu.Unlock()
			e.fn()
			v.release()
			continue
		}
		// Concurrent mode: drain the whole head tick in one parallel
		// batch. Cascades that land back on this tick are picked up by
		// the next loop round (now never regresses, so they run before
		// any later tick).
		t := v.queue[0].at
		var batch []*vevent
		for len(v.queue) > 0 && v.queue[0].at == t {
			e := heap.Pop(&v.queue).(*vevent)
			if e.state != vePending {
				continue
			}
			e.state = veFired
			batch = append(batch, e)
		}
		if len(batch) == 0 {
			v.mu.Unlock()
			continue
		}
		if t > v.now {
			v.now = t
		}
		v.holds += len(batch)
		v.mu.Unlock()
		for _, e := range batch {
			go func(fn func()) {
				fn()
				v.release()
			}(e.fn)
		}
	}
}

// dispatchStriped pops the earliest (tick, priority) batch, partitions it
// by stripe key preserving scheduling order, and fans the stripes out to
// the worker pool. Called with v.mu held; returns with it released. The
// holds taken for the batch form the barrier: the dispatcher cannot pop
// the next batch (or advance time) until every stripe has drained, and
// cascades that land back on the current (tick, priority) join the next
// batch before any later one.
func (v *Virtual) dispatchStriped() {
	t, p := v.queue[0].at, v.queue[0].prio
	var batch []*vevent
	for len(v.queue) > 0 && v.queue[0].at == t && v.queue[0].prio == p {
		e := heap.Pop(&v.queue).(*vevent)
		if e.state != vePending {
			continue
		}
		e.state = veFired
		batch = append(batch, e)
	}
	if len(batch) == 0 {
		v.mu.Unlock()
		return
	}
	if t > v.now {
		v.now = t
	}
	v.holds += len(batch)
	v.mu.Unlock()

	// Partition by stripe key. Batch order is seq order (heap pops), so
	// each stripe inherits scheduling order.
	stripes := make(map[uint64][]*vevent, len(batch))
	order := make([]uint64, 0, len(batch))
	for _, e := range batch {
		if _, ok := stripes[e.key]; !ok {
			order = append(order, e.key)
		}
		stripes[e.key] = append(stripes[e.key], e)
	}
	if len(order) == 1 {
		// One stripe: run inline on the dispatcher, same as serial mode.
		for _, e := range batch {
			e.fn()
		}
		v.releaseN(len(batch))
		return
	}
	for _, k := range order {
		v.workCh <- stripes[k]
	}
}

func (v *Virtual) release() {
	v.mu.Lock()
	v.holds--
	v.cond.Broadcast()
	v.mu.Unlock()
}

func (v *Virtual) releaseN(n int) {
	v.mu.Lock()
	v.holds -= n
	v.cond.Broadcast()
	v.mu.Unlock()
}

type virtualTimer struct {
	v *Virtual
	e *vevent
}

func (t *virtualTimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	if t.e.state != vePending {
		return false
	}
	t.e.state = veStopped
	return true
}

// stoppedTimer is returned for events scheduled after Close.
type stoppedTimer struct{}

func (stoppedTimer) Stop() bool { return false }

// ---------------------------------------------------------------------------
// LatencyProbe: observed notification-latency estimator for adaptive Δ.

// LatencyProbe aggregates observed delivery lag — how far past its
// scheduled tick a notification actually reached a party — as an EWMA plus
// a per-window maximum. The clearing engine reads it to adapt Δ: the spec
// Δ may shrink toward the hardware's real detection latency, but never
// below the observed lag plus a safety margin (see DESIGN.md §6).
//
// It implements chain.DeliveryProbe, so a registry can carry one and every
// runtime sharing the registry feeds it without extra plumbing.
type LatencyProbe struct {
	mu        sync.Mutex
	ewma      float64
	samples   uint64
	windowN   uint64
	windowMax vtime.Duration
}

// ewmaAlpha weights new observations; ~1/16 smooths per-delivery noise
// while tracking load shifts within a few clearing intervals.
const ewmaAlpha = 1.0 / 16

// NewLatencyProbe returns an empty probe.
func NewLatencyProbe() *LatencyProbe { return &LatencyProbe{} }

// Observe records one delivery lag, in ticks. Negative lags (deliveries
// that ran early relative to target, possible only under virtual time)
// count as zero.
func (p *LatencyProbe) Observe(lag vtime.Duration) {
	if lag < 0 {
		lag = 0
	}
	p.mu.Lock()
	if p.samples == 0 {
		p.ewma = float64(lag)
	} else {
		p.ewma += ewmaAlpha * (float64(lag) - p.ewma)
	}
	p.samples++
	p.windowN++
	if lag > p.windowMax {
		p.windowMax = lag
	}
	p.mu.Unlock()
}

// LatencySnapshot is a point-in-time view of the probe.
type LatencySnapshot struct {
	// EWMA is the smoothed delivery lag in ticks.
	EWMA float64
	// WindowMax is the worst lag since the last TakeWindow.
	WindowMax vtime.Duration
	// WindowSamples counts observations since the last TakeWindow —
	// controllers gate on it so an empty window cannot retrigger a
	// decision on stale data.
	WindowSamples uint64
	// Samples counts observations since creation.
	Samples uint64
}

// Snapshot returns the current estimate without resetting the window.
func (p *LatencyProbe) Snapshot() LatencySnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return LatencySnapshot{EWMA: p.ewma, WindowMax: p.windowMax, WindowSamples: p.windowN, Samples: p.samples}
}

// TakeWindow returns the current snapshot and resets the window (max and
// sample count), so stale worst cases decay instead of pinning Δ high
// forever.
func (p *LatencyProbe) TakeWindow() LatencySnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := LatencySnapshot{EWMA: p.ewma, WindowMax: p.windowMax, WindowSamples: p.windowN, Samples: p.samples}
	p.windowMax = 0
	p.windowN = 0
	return s
}

// EstimateTicks returns a conservative whole-tick latency estimate: the
// ceiling of the EWMA or the window max, whichever is larger.
func (s LatencySnapshot) EstimateTicks() vtime.Duration {
	est := vtime.Duration(math.Ceil(s.EWMA))
	if s.WindowMax > est {
		est = s.WindowMax
	}
	return est
}
