package audit

import (
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
)

func TestSettleCleanRun(t *testing.T) {
	setup, res := setupRun(t, graphgen.ThreeWay(), nil)
	faults := Run(setup.Spec, res.Registry)
	s := Settle(setup.Spec, faults, 100)
	if len(s.Slashed) != 0 || s.Burned != 0 {
		t.Fatalf("clean run should slash no one: %+v", s)
	}
	for _, p := range setup.Spec.Parties {
		if s.Payout[p] != 100 {
			t.Errorf("%s payout = %d, want the bond back", p, s.Payout[p])
		}
	}
}

func TestSettleSlashesSilentLeader(t *testing.T) {
	setup, res := setupRun(t, graphgen.ThreeWay(), func(st *core.Setup, r *core.Runner) {
		idx, _ := st.Spec.LeaderIndex(0)
		r.SetBehavior(0, adversary.SilentLeader(idx))
	})
	faults := Run(setup.Spec, res.Registry)
	s := Settle(setup.Spec, faults, 100)
	if len(s.Slashed) != 1 || s.Slashed[0] != "Alice" {
		t.Fatalf("slashed = %v, want [Alice]", s.Slashed)
	}
	if s.Payout["Alice"] != 0 {
		t.Errorf("Alice payout = %d, want 0", s.Payout["Alice"])
	}
	// Her 100 splits evenly between Bob and Carol.
	if s.Payout["Bob"] != 150 || s.Payout["Carol"] != 150 {
		t.Errorf("payouts = %v, want 150 each for the victims", s.Payout)
	}
	if s.Burned != 0 {
		t.Errorf("burned = %d, want 0", s.Burned)
	}
}

func TestSettleIndivisibleRemainderBurns(t *testing.T) {
	setup, res := setupRun(t, graphgen.ThreeWay(), func(st *core.Setup, r *core.Runner) {
		idx, _ := st.Spec.LeaderIndex(0)
		r.SetBehavior(0, adversary.SilentLeader(idx))
	})
	faults := Run(setup.Spec, res.Registry)
	s := Settle(setup.Spec, faults, 101) // 101 does not split between two
	if s.Payout["Bob"] != 101+50 || s.Payout["Carol"] != 101+50 {
		t.Errorf("payouts = %v", s.Payout)
	}
	if s.Burned != 1 {
		t.Errorf("burned = %d, want 1", s.Burned)
	}
}

func TestSettleConservesValue(t *testing.T) {
	// Total payouts + burned always equals total bonds posted.
	setup, res := setupRun(t, graphgen.ThreeWay(), func(st *core.Setup, r *core.Runner) {
		r.SetBehavior(1, adversary.WithholdPublications())
	})
	faults := Run(setup.Spec, res.Registry)
	const bond = 97
	s := Settle(setup.Spec, faults, bond)
	total := s.Burned
	for _, p := range s.Payout {
		total += p
	}
	if want := uint64(bond * 3); total != want {
		t.Errorf("value not conserved: %d, want %d", total, want)
	}
}
