package audit

import (
	"math/rand"
	"testing"

	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
)

func setupRun(t *testing.T, d *digraph.Digraph, rig func(*core.Setup, *core.Runner)) (*core.Setup, *core.Result) {
	t.Helper()
	setup, err := core.NewSetup(d, core.Config{Delta: 10, Start: 100, Rand: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRunner(setup, core.Options{Seed: 6})
	if rig != nil {
		rig(setup, r)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return setup, res
}

func faultsOf(faults []Fault, v digraph.Vertex) []FaultKind {
	var kinds []FaultKind
	for _, f := range faults {
		if f.Vertex == v {
			kinds = append(kinds, f.Kind)
		}
	}
	return kinds
}

func TestCleanRunNoFaults(t *testing.T) {
	setup, res := setupRun(t, graphgen.ThreeWay(), nil)
	if faults := Run(setup.Spec, res.Registry); len(faults) != 0 {
		t.Errorf("conforming run should audit clean, got %v", faults)
	}
}

func TestCleanTwoLeaderNoFaults(t *testing.T) {
	setup, res := setupRun(t, graphgen.TwoLeaderTriangle(), nil)
	if faults := Run(setup.Spec, res.Registry); len(faults) != 0 {
		t.Errorf("conforming run should audit clean, got %v", faults)
	}
}

func TestSilentLeaderBlamed(t *testing.T) {
	setup, res := setupRun(t, graphgen.ThreeWay(), func(s *core.Setup, r *core.Runner) {
		idx, _ := s.Spec.LeaderIndex(0)
		r.SetBehavior(0, adversary.SilentLeader(idx))
	})
	faults := Run(setup.Spec, res.Registry)
	kinds := faultsOf(faults, 0)
	if len(kinds) != 1 || kinds[0] != FaultSilentLeader {
		t.Errorf("Alice's faults = %v, want exactly [silent-leader]; all: %v", kinds, faults)
	}
	for v := digraph.Vertex(1); v < 3; v++ {
		if got := faultsOf(faults, v); len(got) != 0 {
			t.Errorf("innocent %d blamed: %v", v, got)
		}
	}
}

func TestWithholdingPublisherBlamed(t *testing.T) {
	setup, res := setupRun(t, graphgen.ThreeWay(), func(s *core.Setup, r *core.Runner) {
		// Bob (a follower whose entering arc gets covered) never
		// publishes his leaving contract.
		r.SetBehavior(1, adversary.WithholdPublications())
	})
	faults := Run(setup.Spec, res.Registry)
	kinds := faultsOf(faults, 1)
	if len(kinds) != 1 || kinds[0] != FaultMissingPublication {
		t.Errorf("Bob's faults = %v, want [missing-publication]; all: %v", kinds, faults)
	}
	if got := faultsOf(faults, 2); len(got) != 0 {
		// Carol never saw her entering arc covered: excused.
		t.Errorf("Carol blamed: %v", got)
	}
}

func TestCrashedRelayBlamed(t *testing.T) {
	// Carol crashes after Alice reveals: the ledgers show the secret on
	// Carol's leaving arc, a live waiting contract on her entering arc,
	// and no relay — exactly FaultUnrelayedSecret.
	setup, res := setupRun(t, graphgen.ThreeWay(), func(s *core.Setup, r *core.Runner) {
		r.SetBehavior(2, adversary.HaltAt(core.NewConforming(), 125))
	})
	faults := Run(setup.Spec, res.Registry)
	kinds := faultsOf(faults, 2)
	if len(kinds) != 1 || kinds[0] != FaultUnrelayedSecret {
		t.Errorf("Carol's faults = %v, want [unrelayed-secret]; all: %v", kinds, faults)
	}
	if got := faultsOf(faults, 0); len(got) != 0 {
		t.Errorf("Alice blamed: %v", got)
	}
	if got := faultsOf(faults, 1); len(got) != 0 {
		t.Errorf("Bob blamed: %v", got)
	}
}

func TestCorruptPublisherBlamedVictimExcused(t *testing.T) {
	setup, res := setupRun(t, graphgen.ThreeWay(), func(s *core.Setup, r *core.Runner) {
		r.SetBehavior(0, adversary.CorruptPublisher())
	})
	faults := Run(setup.Spec, res.Registry)
	kinds := faultsOf(faults, 0)
	if len(kinds) == 0 || kinds[0] != FaultCorruptContract {
		t.Errorf("Alice's faults = %v, want corrupt-contract first; all: %v", kinds, faults)
	}
	// Bob abandoned without publishing — but his entering arc was never
	// CORRECTLY covered, so he is excused.
	if got := faultsOf(faults, 1); len(got) != 0 {
		t.Errorf("Bob blamed despite the corrupt entering contract: %v", got)
	}
}

func TestNoClaimNotAFault(t *testing.T) {
	// Claiming is self-interest, not an obligation the audit enforces.
	setup, res := setupRun(t, graphgen.ThreeWay(), func(s *core.Setup, r *core.Runner) {
		r.SetBehavior(1, adversary.NoClaim())
	})
	if faults := Run(setup.Spec, res.Registry); len(faults) != 0 {
		t.Errorf("lazy claiming should not be a fault: %v", faults)
	}
}

func TestAuditSkipsHTLCVariants(t *testing.T) {
	setup, err := core.NewSetup(graphgen.ThreeWay(), core.Config{
		Kind: core.KindSingleLeader, Rand: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewRunner(setup, core.Options{Seed: 7}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if faults := Run(setup.Spec, res.Registry); faults != nil {
		t.Errorf("HTLC variants are out of audit scope, got %v", faults)
	}
}

func TestFaultStrings(t *testing.T) {
	f := Fault{Party: "bob", Vertex: 1, Kind: FaultSilentLeader, Arc: -1, Detail: "d"}
	if f.String() == "" || FaultKind(99).String() != "fault(99)" {
		t.Error("fault rendering")
	}
	f2 := Fault{Party: "bob", Kind: FaultMissingPublication, Arc: 2, Detail: "d"}
	if f2.String() == "" {
		t.Error("arc fault rendering")
	}
}
