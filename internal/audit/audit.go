// Package audit implements the fault-attribution extension sketched in
// the paper's Section 5: after a failed swap, "examine the blockchains to
// determine who was at fault (by failing to execute an enabled
// transition)". Given only public information — the swap plan, the
// ledgers' publication times, and the contracts' final states — the
// auditor names every party that had an enabled protocol move and did not
// make it, and every party that published a contract deviating from the
// plan. A bond scheme would slash exactly these parties.
//
// The audit covers the general (hashkey) protocol variant.
package audit

import (
	"fmt"
	"sort"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/htlc"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// FaultKind classifies a protocol violation detectable from public state.
type FaultKind int

// Fault kinds.
const (
	// FaultCorruptContract: published a contract that deviates from the
	// plan.
	FaultCorruptContract FaultKind = iota + 1
	// FaultMissingPublication: every entering arc carried a correct
	// contract (or the party is a leader) and a leaving arc was never
	// published.
	FaultMissingPublication
	// FaultSilentLeader: a leader whose entering arcs were covered in
	// time never presented its secret anywhere.
	FaultSilentLeader
	// FaultUnrelayedSecret: a hashlock opened on the party's leaving arc
	// early enough to relay, an entering arc's contract was live and
	// waiting, and the party never presented the extended hashkey.
	FaultUnrelayedSecret
)

var faultNames = map[FaultKind]string{
	FaultCorruptContract:    "corrupt-contract",
	FaultMissingPublication: "missing-publication",
	FaultSilentLeader:       "silent-leader",
	FaultUnrelayedSecret:    "unrelayed-secret",
}

// String names the fault kind.
func (k FaultKind) String() string {
	if s, ok := faultNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault attributes one violation to one party.
type Fault struct {
	Party  chain.PartyID
	Vertex digraph.Vertex
	Kind   FaultKind
	Arc    int // offending arc, -1 when not arc-specific
	Detail string
}

// String renders the fault.
func (f Fault) String() string {
	if f.Arc >= 0 {
		return fmt.Sprintf("%s: %s (arc %d): %s", f.Party, f.Kind, f.Arc, f.Detail)
	}
	return fmt.Sprintf("%s: %s: %s", f.Party, f.Kind, f.Detail)
}

// arcState is what the ledgers reveal about one arc.
type arcState struct {
	contract    *htlc.Swap
	publishedAt vtime.Ticks
	correct     bool
}

// Run audits a finished swap from public state only: the plan and the
// chain registry. Faults are returned sorted by vertex then kind.
func Run(spec *core.Spec, reg *chain.Registry) []Fault {
	if spec.Kind != core.KindGeneral {
		return nil
	}
	states := collect(spec, reg)
	var faults []Fault
	faults = append(faults, corruptContracts(spec, states)...)
	faults = append(faults, missingPublications(spec, states)...)
	faults = append(faults, silentLeaders(spec, states)...)
	faults = append(faults, unrelayedSecrets(spec, states)...)
	sort.Slice(faults, func(i, j int) bool {
		if faults[i].Vertex != faults[j].Vertex {
			return faults[i].Vertex < faults[j].Vertex
		}
		if faults[i].Kind != faults[j].Kind {
			return faults[i].Kind < faults[j].Kind
		}
		return faults[i].Arc < faults[j].Arc
	})
	return faults
}

// collect reads every arc's contract and publication time off the chains.
func collect(spec *core.Spec, reg *chain.Registry) map[int]*arcState {
	states := make(map[int]*arcState, spec.D.NumArcs())
	pubTimes := make(map[chain.ContractID]vtime.Ticks)
	for _, name := range reg.Names() {
		for _, rec := range reg.Chain(name).Records() {
			if rec.Kind == chain.NoteContractPublished {
				pubTimes[rec.Contract] = rec.At
			}
		}
	}
	for id := 0; id < spec.D.NumArcs(); id++ {
		cid := spec.ContractID(id)
		c, ok := reg.Chain(spec.Assets[id].Chain).Contract(cid)
		if !ok {
			continue
		}
		sw, ok := c.(*htlc.Swap)
		if !ok {
			continue
		}
		states[id] = &arcState{
			contract:    sw,
			publishedAt: pubTimes[cid],
			correct:     swapMatchesPlan(sw, spec, id),
		}
	}
	return states
}

func swapMatchesPlan(sw *htlc.Swap, spec *core.Spec, arcID int) bool {
	got, want := sw.Params(), spec.ContractParams(arcID)
	if got.ID != want.ID || got.Party != want.Party || got.Counter != want.Counter ||
		got.Asset != want.Asset || got.Start != want.Start || got.Delta != want.Delta ||
		got.DiamBound != want.DiamBound || len(got.Locks) != len(want.Locks) {
		return false
	}
	for i := range want.Locks {
		if got.Locks[i] != want.Locks[i] || got.Leaders[i] != want.Leaders[i] ||
			got.Timelocks[i] != want.Timelocks[i] {
			return false
		}
	}
	return true
}

func corruptContracts(spec *core.Spec, states map[int]*arcState) []Fault {
	var faults []Fault
	for id := 0; id < spec.D.NumArcs(); id++ {
		st := states[id]
		if st == nil || st.correct {
			continue
		}
		head := spec.D.Arc(id).Head
		faults = append(faults, Fault{
			Party:  spec.PartyOf(head),
			Vertex: head,
			Kind:   FaultCorruptContract,
			Arc:    id,
			Detail: "published contract deviates from the swap plan",
		})
	}
	return faults
}

// coveredAt returns when v's entering arcs were all correctly covered
// (the publication time of the last one), and whether they ever were.
func coveredAt(spec *core.Spec, states map[int]*arcState, v digraph.Vertex) (vtime.Ticks, bool) {
	var latest vtime.Ticks
	for _, arc := range spec.D.In(v) {
		st := states[arc]
		if st == nil || !st.correct {
			return 0, false
		}
		if st.publishedAt.After(latest) {
			latest = st.publishedAt
		}
	}
	return latest, true
}

func missingPublications(spec *core.Spec, states map[int]*arcState) []Fault {
	var faults []Fault
	for _, v := range spec.D.Vertices() {
		enabled := spec.IsLeader(v)
		if !enabled {
			_, enabled = coveredAt(spec, states, v)
		}
		if !enabled {
			continue
		}
		for _, arc := range spec.D.Out(v) {
			if states[arc] == nil {
				faults = append(faults, Fault{
					Party:  spec.PartyOf(v),
					Vertex: v,
					Kind:   FaultMissingPublication,
					Arc:    arc,
					Detail: "entering arcs were covered; leaving contract never published",
				})
			}
		}
	}
	return faults
}

func silentLeaders(spec *core.Spec, states map[int]*arcState) []Fault {
	var faults []Fault
	for i, leader := range spec.Leaders {
		covered, ok := coveredAt(spec, states, leader)
		if !ok {
			continue // Phase One never completed for this leader
		}
		// The leader's reveal deadline: its degenerate hashkey dies at
		// start + diam·Δ; it detects its last entering contract Δ after
		// publication.
		detect := covered.Add(vtime.Duration(spec.Delta))
		deadline := spec.Start.Add(vtime.Scale(spec.DiamBound, spec.Delta))
		if detect.After(deadline) {
			continue // reveal was never possible in time
		}
		revealed := false
		for id := 0; id < spec.D.NumArcs(); id++ {
			if st := states[id]; st != nil {
				if _, open := st.contract.UnlockTime(i); open {
					revealed = true
					break
				}
			}
		}
		if !revealed {
			faults = append(faults, Fault{
				Party:  spec.PartyOf(leader),
				Vertex: leader,
				Kind:   FaultSilentLeader,
				Arc:    -1,
				Detail: fmt.Sprintf("lock %d never opened anywhere despite covered entering arcs", i),
			})
		}
	}
	return faults
}

func unrelayedSecrets(spec *core.Spec, states map[int]*arcState) []Fault {
	var faults []Fault
	for _, v := range spec.D.Vertices() {
		for i := range spec.Leaders {
			// Earliest the party provably knew the secret: the first
			// unlock of lock i on a leaving arc, plus Δ detection; the
			// relay deadline stretches with that key's path.
			var (
				knew     vtime.Ticks
				pathLen  int
				observed bool
			)
			for _, arc := range spec.D.Out(v) {
				st := states[arc]
				if st == nil {
					continue
				}
				at, open := st.contract.UnlockTime(i)
				if !open {
					continue
				}
				key := st.contract.UnlockKey(i)
				if key.Path.Contains(v) {
					// The party itself signed this chain: it did relay.
					observed = false
					break
				}
				t := at.Add(vtime.Duration(spec.Delta))
				if !observed || t.Before(knew) {
					knew, pathLen, observed = t, key.PathLen(), true
				}
			}
			if !observed {
				continue
			}
			deadline := spec.Start.Add(vtime.Scale(spec.DiamBound+pathLen+1, spec.Delta))
			for _, arc := range spec.D.In(v) {
				st := states[arc]
				if st == nil || !st.correct {
					continue
				}
				if _, open := st.contract.UnlockTime(i); open {
					continue
				}
				ready := st.publishedAt.Add(vtime.Duration(spec.Delta))
				could := knew
				if ready.After(could) {
					could = ready
				}
				if could.After(deadline) {
					continue // never had a valid window
				}
				faults = append(faults, Fault{
					Party:  spec.PartyOf(v),
					Vertex: v,
					Kind:   FaultUnrelayedSecret,
					Arc:    arc,
					Detail: fmt.Sprintf("knew secret %d by t=%d, entering arc waited, never relayed", i, knew),
				})
			}
		}
	}
	return faults
}
