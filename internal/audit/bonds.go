package audit

import (
	"sort"

	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
)

// Bond settlement closes the loop the paper's Section 5 sketches: "one
// could require parties to post bonds, and following a failed swap
// examine the blockchains to determine who was at fault". Every party
// posts the same bond up front; after the audit, each faulty party's bond
// is slashed and redistributed equally among the fault-free parties (the
// griefing victims), with any indivisible remainder burned.

// Settlement reports where each party's bond ended up.
type Settlement struct {
	// Bond is the per-party deposit.
	Bond uint64
	// Payout maps each party to what it gets back: its own bond if
	// fault-free, zero if slashed, plus an equal share of all slashed
	// bonds if fault-free.
	Payout map[chain.PartyID]uint64
	// Slashed lists the parties that lost their bonds, sorted.
	Slashed []chain.PartyID
	// Burned is the indivisible remainder of the slashed pool.
	Burned uint64
}

// Settle computes bond redistribution from audit faults. With no faults,
// everyone simply gets their bond back.
func Settle(spec *core.Spec, faults []Fault, bond uint64) *Settlement {
	atFault := make(map[digraph.Vertex]bool)
	for _, f := range faults {
		atFault[f.Vertex] = true
	}
	s := &Settlement{
		Bond:   bond,
		Payout: make(map[chain.PartyID]uint64, spec.D.NumVertices()),
	}
	var honest []chain.PartyID
	for _, v := range spec.D.Vertices() {
		p := spec.PartyOf(v)
		if atFault[v] {
			s.Slashed = append(s.Slashed, p)
			s.Payout[p] = 0
		} else {
			honest = append(honest, p)
			s.Payout[p] = bond
		}
	}
	sort.Slice(s.Slashed, func(i, j int) bool { return s.Slashed[i] < s.Slashed[j] })
	pool := bond * uint64(len(s.Slashed))
	if len(honest) == 0 {
		s.Burned = pool
		return s
	}
	share := pool / uint64(len(honest))
	s.Burned = pool - share*uint64(len(honest))
	for _, p := range honest {
		s.Payout[p] += share
	}
	return s
}
