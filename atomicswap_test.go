package atomicswap_test

import (
	"math/rand"
	"testing"

	atomicswap "github.com/go-atomicswap/atomicswap"
)

// TestFacadeQuickstart is the README's quickstart, verbatim.
func TestFacadeQuickstart(t *testing.T) {
	d := atomicswap.ThreeWay()
	setup, err := atomicswap.NewSetup(d, atomicswap.Config{Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	res, err := atomicswap.NewRunner(setup, atomicswap.Options{Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Fatal("quickstart should end AllDeal")
	}
}

func TestFacadeMarketClearing(t *testing.T) {
	offers := []atomicswap.Offer{
		{Party: "alice", Give: []atomicswap.ProposedTransfer{{To: "bob", Chain: "altcoin", Asset: "alt", Amount: 100}}},
		{Party: "bob", Give: []atomicswap.ProposedTransfer{{To: "carol", Chain: "bitcoin", Asset: "btc", Amount: 1}}},
		{Party: "carol", Give: []atomicswap.ProposedTransfer{{To: "alice", Chain: "titles", Asset: "car", Amount: 1}}},
	}
	setup, err := atomicswap.Clear(offers, atomicswap.Config{Rand: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range offers {
		if err := atomicswap.VerifyPlan(setup.Spec, o); err != nil {
			t.Errorf("VerifyPlan(%s): %v", o.Party, err)
		}
	}
	res, err := atomicswap.NewRunner(setup, atomicswap.Options{Seed: 2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Error("cleared swap should end AllDeal")
	}
}

func TestFacadeAdversary(t *testing.T) {
	setup, err := atomicswap.NewSetup(atomicswap.ThreeWay(), atomicswap.Config{Rand: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	r := atomicswap.NewRunner(setup, atomicswap.Options{Seed: 3})
	r.SetBehavior(1, atomicswap.HaltAt(atomicswap.NewConforming(), 0))
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Conforming {
		if res.Report.Of(v) == atomicswap.Underwater {
			t.Error("conforming party underwater")
		}
	}
}

func TestFacadeAudit(t *testing.T) {
	setup, err := atomicswap.NewSetup(atomicswap.ThreeWay(), atomicswap.Config{Rand: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	r := atomicswap.NewRunner(setup, atomicswap.Options{Seed: 4})
	r.SetBehavior(1, atomicswap.WithholdPublications())
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	faults := atomicswap.Audit(setup.Spec, res)
	if len(faults) != 1 || faults[0].Vertex != 1 {
		t.Errorf("faults = %v, want exactly Bob blamed", faults)
	}
}

func TestFacadeBondSettlement(t *testing.T) {
	setup, err := atomicswap.NewSetup(atomicswap.ThreeWay(), atomicswap.Config{Rand: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
	r := atomicswap.NewRunner(setup, atomicswap.Options{Seed: 6})
	r.SetBehavior(1, atomicswap.WithholdPublications())
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := atomicswap.Settle(setup.Spec, atomicswap.Audit(setup.Spec, res), 100)
	if len(s.Slashed) != 1 || s.Slashed[0] != "Bob" {
		t.Errorf("slashed = %v, want [Bob]", s.Slashed)
	}
	if s.Payout["Alice"] != 150 || s.Payout["Carol"] != 150 {
		t.Errorf("payouts = %v", s.Payout)
	}
}

func TestFacadeConcurrentRuntime(t *testing.T) {
	setup, err := atomicswap.NewSetup(atomicswap.ThreeWay(), atomicswap.Config{Rand: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	res, err := atomicswap.RunConcurrent(setup, nil, atomicswap.ConcConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.AllDeal() {
		t.Error("concurrent quickstart should end AllDeal")
	}
}

func TestFacadePebble(t *testing.T) {
	d := atomicswap.ThreeWay()
	if res := atomicswap.LazyPebble(d, []atomicswap.Vertex{0}); !res.Complete {
		t.Error("lazy pebble game should complete")
	}
	if res := atomicswap.EagerPebble(d.Transpose(), 0); !res.Complete {
		t.Error("eager pebble game should complete")
	}
}
