// Package atomicswap is a from-scratch Go implementation of the atomic
// cross-chain swap protocol of Maurice Herlihy's "Atomic Cross-Chain
// Swaps" (PODC 2018).
//
// A swap is a strongly connected digraph whose vertexes are parties and
// whose arcs are proposed asset transfers on (mock) blockchains. Given a
// feedback vertex set of leaders, the protocol deploys hashed-timelock
// swap contracts along the arcs (Phase One) and propagates leader secrets
// against them as path-signed hashkeys (Phase Two), guaranteeing that if
// everyone conforms all transfers happen within 2·diam(D)·Δ, and that no
// conforming party ever ends up "Underwater" no matter what any coalition
// does.
//
// The package is a facade over the internal packages: build a digraph (or
// use a generator, or clear a set of market offers), create a Setup, run
// it under the deterministic discrete-event Runner, and inspect the
// Result. Adversarial behaviors let you reproduce every attack discussed
// in the paper.
//
//	d := atomicswap.ThreeWay()
//	setup, err := atomicswap.NewSetup(d, atomicswap.Config{})
//	if err != nil { ... }
//	res, err := atomicswap.NewRunner(setup, atomicswap.Options{Seed: 1}).Run()
//	if err != nil { ... }
//	fmt.Println(res.Report.AllDeal()) // true
package atomicswap

import (
	"github.com/go-atomicswap/atomicswap/internal/adversary"
	"github.com/go-atomicswap/atomicswap/internal/audit"
	"github.com/go-atomicswap/atomicswap/internal/baseline"
	"github.com/go-atomicswap/atomicswap/internal/chain"
	"github.com/go-atomicswap/atomicswap/internal/conc"
	"github.com/go-atomicswap/atomicswap/internal/core"
	"github.com/go-atomicswap/atomicswap/internal/digraph"
	"github.com/go-atomicswap/atomicswap/internal/engine"
	"github.com/go-atomicswap/atomicswap/internal/engine/loadgen"
	"github.com/go-atomicswap/atomicswap/internal/engine/scenario"
	"github.com/go-atomicswap/atomicswap/internal/graphgen"
	"github.com/go-atomicswap/atomicswap/internal/hashkey"
	"github.com/go-atomicswap/atomicswap/internal/metrics"
	"github.com/go-atomicswap/atomicswap/internal/outcome"
	"github.com/go-atomicswap/atomicswap/internal/pebble"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

// Graph model.
type (
	// Digraph is the swap digraph: parties as vertexes, proposed
	// transfers as arcs (multigraphs allowed, self-loops not).
	Digraph = digraph.Digraph
	// Vertex identifies a party in the digraph.
	Vertex = digraph.Vertex
	// Arc is one proposed transfer from Head to Tail.
	Arc = digraph.Arc
	// Path is a simple vertex path, as used by hashkeys.
	Path = digraph.Path
)

// Protocol configuration and execution.
type (
	// Spec is the public swap plan every party must agree on.
	Spec = core.Spec
	// Setup couples a Spec with the private key material a simulation
	// needs to play all parties.
	Setup = core.Setup
	// Config parameterizes NewSetup.
	Config = core.Config
	// Options parameterizes a Runner.
	Options = core.Options
	// Runner executes one swap deterministically.
	Runner = core.Runner
	// Result reports outcomes, timing, storage, and communication.
	Result = core.Result
	// Kind selects the protocol variant.
	Kind = core.Kind
	// Behavior is a party's protocol logic; Env is its world.
	Behavior = core.Behavior
	// Env is the interface through which behaviors act on chains.
	Env = core.Env
	// ArcAsset names the asset an arc transfers.
	ArcAsset = core.ArcAsset
	// Offer is a party's submission to the market-clearing service.
	Offer = core.Offer
	// ProposedTransfer is one asset an offer hands over.
	ProposedTransfer = core.ProposedTransfer
)

// Protocol variants.
const (
	// KindGeneral is the paper's general multi-leader hashkey protocol.
	KindGeneral = core.KindGeneral
	// KindSingleLeader is the Section 4.6 timeout-staircase special case.
	KindSingleLeader = core.KindSingleLeader
	// KindUniformTimeout is the broken equal-timeout baseline.
	KindUniformTimeout = core.KindUniformTimeout
)

// Outcome classification (Figure 3).
type (
	// Class is a payoff class for a party or coalition.
	Class = outcome.Class
	// OutcomeReport classifies every party of a finished run.
	OutcomeReport = outcome.Report
)

// Payoff classes.
const (
	// Underwater is the only class unacceptable to conforming parties.
	Underwater = outcome.Underwater
	// NoDeal is the status quo.
	NoDeal = outcome.NoDeal
	// Deal is the intended outcome.
	Deal = outcome.Deal
	// Discount means everything received, less than everything paid.
	Discount = outcome.Discount
	// FreeRide means something received, nothing paid.
	FreeRide = outcome.FreeRide
)

// Chain-level identifiers.
type (
	// PartyID identifies a protocol participant across all chains.
	PartyID = chain.PartyID
	// AssetID identifies an asset within its chain.
	AssetID = chain.AssetID
)

// Crypto material.
type (
	// Secret is a leader-generated hashlock preimage.
	Secret = hashkey.Secret
	// Lock is a SHA-256 hashlock.
	Lock = hashkey.Lock
	// Hashkey is the (secret, path, signature-chain) unlock token.
	Hashkey = hashkey.Hashkey
)

// Virtual time.
type (
	// Ticks is an instant of virtual time.
	Ticks = vtime.Ticks
	// Duration is a span of virtual time.
	Duration = vtime.Duration
)

// NewDigraph returns an empty swap digraph.
func NewDigraph() *Digraph { return digraph.New() }

// NewSetup builds and validates a swap setup over d; see core.Config for
// the defaults.
func NewSetup(d *Digraph, cfg Config) (*Setup, error) { return core.NewSetup(d, cfg) }

// NewRunner prepares a deterministic run of the setup.
func NewRunner(setup *Setup, opts Options) *Runner { return core.NewRunner(setup, opts) }

// Clear combines market offers into a validated setup (Section 4.2).
func Clear(offers []Offer, cfg Config) (*Setup, error) { return core.Clear(offers, cfg) }

// VerifyPlan checks a published plan against one party's own offer.
func VerifyPlan(spec *Spec, offer Offer) error { return core.VerifyPlan(spec, offer) }

// NewConforming returns the paper's conforming behavior for the general
// protocol; NewConformingHTLC the single-leader variant's.
func NewConforming() Behavior { return core.NewConforming() }

// NewConformingHTLC returns the conforming behavior for the HTLC-based
// protocol variants.
func NewConformingHTLC() Behavior { return core.NewConformingHTLC() }

// Graph generators for the paper's figures and standard families.
var (
	// ThreeWay is Figure 1: Alice -> Bob -> Carol -> Alice.
	ThreeWay = graphgen.ThreeWay
	// TwoLeaderTriangle is the complete 3-vertex digraph of Figures 6–8.
	TwoLeaderTriangle = graphgen.TwoLeaderTriangle
	// Cycle is the directed n-cycle.
	Cycle = graphgen.Cycle
	// BidirCycle is the n-cycle with arcs both ways.
	BidirCycle = graphgen.BidirCycle
	// Clique is the complete digraph on n vertexes.
	Clique = graphgen.Clique
	// Flower is k petal cycles sharing one center (single-leader family).
	Flower = graphgen.Flower
	// RandomStronglyConnected is a seeded random strongly connected digraph.
	RandomStronglyConnected = graphgen.RandomStronglyConnected
	// NotStronglyConnected is the Lemma 3.4 counterexample shape.
	NotStronglyConnected = graphgen.NotStronglyConnected
	// MultiArcPair is the parallel-arc two-party multigraph.
	MultiArcPair = graphgen.MultiArcPair
)

// Adversarial behaviors, for reproducing the paper's attack discussions.
var (
	// HaltAt wraps a behavior as a crash fault at a given tick.
	HaltAt = adversary.HaltAt
	// SilentLeader completes Phase One but never reveals (griefing DoS).
	SilentLeader = adversary.SilentLeader
	// WithholdPublications drops contract publications on given arcs.
	WithholdPublications = adversary.WithholdPublications
	// NoClaim never claims fully unlocked contracts.
	NoClaim = adversary.NoClaim
	// LastMomentRedeemer delays HTLC redeems to the final valid tick.
	LastMomentRedeemer = adversary.LastMomentRedeemer
	// LastMomentUnlocker delays hashkey unlocks to their deadlines.
	LastMomentUnlocker = adversary.LastMomentUnlocker
	// PrematureRevealer reveals before Phase One completes.
	PrematureRevealer = adversary.PrematureRevealer
	// EagerPublisher publishes leaving arcs before entering are covered.
	EagerPublisher = adversary.EagerPublisher
)

// A Spec also exposes the waits-for analysis of Theorem 4.12:
// Spec.WaitsFor(published) builds the current waits-for digraph and
// Spec.DeadlockCycle(published) detects permanent Phase One deadlock —
// pair it with Runner.PublishedArcs().

// Pebble games (Section 4.4), exposed for analysis.
var (
	// LazyPebble plays the Phase One deployment game.
	LazyPebble = pebble.Lazy
	// EagerPebble plays the Phase Two dissemination game.
	EagerPebble = pebble.Eager
)

// Sequential is the non-atomic plain-transfer baseline.
var Sequential = baseline.Sequential

// RunRecurrent chains multiple swap rounds (Section 5).
var RunRecurrent = core.RunRecurrent

// Fault attribution (the Section 5 bonds/fault future-work extension):
// Audit examines the public ledgers of a finished run and names every
// party that failed to execute an enabled protocol transition.
type (
	// Fault attributes one protocol violation to one party.
	Fault = audit.Fault
	// FaultKind classifies an audited violation.
	FaultKind = audit.FaultKind
)

// Audit runs fault attribution over a finished run's chains.
func Audit(spec *Spec, res *Result) []Fault { return audit.Run(spec, res.Registry) }

// Settlement reports a bond redistribution computed from audit faults.
type Settlement = audit.Settlement

// Settle slashes faulty parties' bonds and redistributes them to the
// fault-free — the full bonds scheme Section 5 sketches.
func Settle(spec *Spec, faults []Fault, bond uint64) *Settlement {
	return audit.Settle(spec, faults, bond)
}

// Concurrent runtime: the same behaviors on one goroutine per party, mock
// chains as shared state, and Δ mapped to wall-clock time.
type (
	// ConcConfig parameterizes a concurrent run.
	ConcConfig = conc.Config
	// ConcResult reports a concurrent run.
	ConcResult = conc.Result
)

// RunConcurrent executes the setup with goroutine-backed parties.
// Behaviors defaults to conforming; entries override per vertex.
func RunConcurrent(setup *Setup, behaviors map[Vertex]Behavior, cfg ConcConfig) (*ConcResult, error) {
	return conc.Run(setup, behaviors, cfg)
}

// Clearing engine: the long-running swap service. Submit offers from any
// goroutine; a clearing loop matches them into concurrent swaps over
// shared chains; Report() gives service-level throughput.
type (
	// Engine is the continuous-intake multi-swap clearing service.
	Engine = engine.Engine
	// EngineConfig parameterizes an Engine.
	EngineConfig = engine.Config
	// OrderID identifies a submitted offer.
	OrderID = engine.OrderID
	// OrderStatus tracks an order through intake, clearing, execution.
	OrderStatus = engine.OrderStatus
	// OrderSnapshot is an order's caller-visible state.
	OrderSnapshot = engine.OrderSnapshot
	// Throughput is the engine's aggregate service report.
	Throughput = metrics.Throughput
)

// Order statuses.
const (
	// OrderPending awaits counterparties in the book.
	OrderPending = engine.StatusPending
	// OrderExecuting is matched into an in-flight swap.
	OrderExecuting = engine.StatusExecuting
	// OrderSettled finished; the snapshot carries the payoff class.
	OrderSettled = engine.StatusSettled
	// OrderRejected was refused; the snapshot carries the reason.
	OrderRejected = engine.StatusRejected
)

// NewEngine creates a clearing engine (call Start before Submit).
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }

// Open-loop load generation: drive an engine from a configurable arrival
// process on its own scheduler (instead of pre-loading the book) and
// measure submit-to-settle latency percentiles under sustained intake.
type (
	// ArrivalProcess shapes open-loop inter-arrival gaps.
	ArrivalProcess = loadgen.Process
	// ConstantArrivals spaces arrivals exactly evenly.
	ConstantArrivals = loadgen.Constant
	// PoissonArrivals draws memoryless exponential gaps.
	PoissonArrivals = loadgen.Poisson
	// BurstArrivals clusters arrivals into synchronized spikes.
	BurstArrivals = loadgen.Burst
	// RampArrivals sweeps the rate linearly across the run.
	RampArrivals = loadgen.Ramp
	// OpenLoadConfig parameterizes one open-loop load.
	OpenLoadConfig = loadgen.Config
	// OpenLoadStats is the generator's intake accounting.
	OpenLoadStats = loadgen.Stats
	// OpenLoadReport couples the engine report with the load stats.
	OpenLoadReport = loadgen.Report
)

// RunOpenLoad streams one open-loop load through a fresh engine: offers
// arrive from the configured process at the configured average rate,
// the engine drains, conservation is verified, and the combined report
// (latency percentiles included) is returned.
func RunOpenLoad(ecfg EngineConfig, lcfg OpenLoadConfig) (OpenLoadReport, error) {
	return loadgen.RunOpenLoad(ecfg, lcfg)
}

// ParseArrivalProfile resolves "constant", "poisson", "burst[:n]", or
// "ramp[:from:to]" to an ArrivalProcess.
func ParseArrivalProfile(s string) (ArrivalProcess, error) { return loadgen.ParseProfile(s) }

// Deterministic scenario harness: seed-replayable adversarial
// experiments. A Scenario composes an open-loop arrival profile with
// per-party deviation strategies injected at configurable rates, runs
// on the engine's deterministic scheduler mode, checks the paper's
// safety invariant (no conforming party ends Underwater; ledgers
// conserve), and returns a canonical digest that is byte-identical
// across replays of the same seed.
type (
	// Scenario is one seed-replayable adversarial experiment.
	Scenario = scenario.Scenario
	// ScenarioDeviation injects one named strategy at a per-party rate.
	ScenarioDeviation = scenario.Deviation
	// ScenarioResult is a finished run: digest, report, violations.
	ScenarioResult = scenario.Result
	// ScenarioDigest is the canonical replay-stable run summary.
	ScenarioDigest = scenario.Digest
	// ScenarioViolation is one failed safety check.
	ScenarioViolation = scenario.Violation
)

// RunScenario executes one scenario deterministically.
func RunScenario(sc Scenario) (*ScenarioResult, error) { return scenario.Run(sc) }

// ScenarioSuite returns the built-in scenario corpus, seeds shifted by
// the offset.
func ScenarioSuite(seedOffset int64) []Scenario { return scenario.Suite(seedOffset) }

// ScenarioStrategies lists the deviation taxonomy's strategy names.
func ScenarioStrategies() []string { return scenario.Strategies() }

// ClearBatch partitions a batch of offers into disjoint swap setups plus
// the residual offers that cannot clear yet — the multi-swap
// generalization of Clear.
func ClearBatch(offers []Offer, base Config) ([]*Setup, []Offer, error) {
	return core.ClearBatch(offers, base)
}
