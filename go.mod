module github.com/go-atomicswap/atomicswap

go 1.24
