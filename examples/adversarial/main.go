// Adversarial scenarios: every attack the paper discusses, run against
// conforming parties. The protocol's guarantee (Theorem 4.9) is that no
// conforming party ever ends Underwater — deviators may hurt themselves.
package main

import (
	"fmt"
	"log"
	"math/rand"

	atomicswap "github.com/go-atomicswap/atomicswap"
)

type scenario struct {
	name   string
	kind   atomicswap.Kind
	attack func(*atomicswap.Setup, *atomicswap.Runner)
	moral  string
}

func main() {
	scenarios := []scenario{
		{
			name: "Bob crashes before the swap starts",
			attack: func(s *atomicswap.Setup, r *atomicswap.Runner) {
				r.SetBehavior(1, atomicswap.HaltAt(atomicswap.NewConforming(), 0))
			},
			moral: "nothing deploys past Bob; every escrow refunds; all NoDeal",
		},
		{
			name: "Carol crashes mid Phase Two",
			attack: func(s *atomicswap.Setup, r *atomicswap.Runner) {
				r.SetBehavior(2, atomicswap.HaltAt(atomicswap.NewConforming(), 125))
			},
			moral: "Alice already holds Carol's unlock: Carol alone ends Underwater",
		},
		{
			name: "the leader never reveals (griefing DoS)",
			attack: func(s *atomicswap.Setup, r *atomicswap.Runner) {
				idx, _ := s.Spec.LeaderIndex(0)
				r.SetBehavior(0, atomicswap.SilentLeader(idx))
			},
			moral: "assets locked only until the timelocks: bounded griefing, all NoDeal",
		},
		{
			name: "Carol unlocks everything at the last valid tick",
			attack: func(s *atomicswap.Setup, r *atomicswap.Runner) {
				r.SetBehavior(2, atomicswap.LastMomentUnlocker())
			},
			moral: "path-dependent deadlines absorb the delay: still all Deal",
		},
		{
			name: "uniform timeouts + last-moment reveal (the broken baseline)",
			kind: atomicswap.KindUniformTimeout,
			attack: func(s *atomicswap.Setup, r *atomicswap.Runner) {
				r.SetBehavior(2, atomicswap.LastMomentRedeemer())
			},
			moral: "with equal timeouts Bob is stranded Underwater — the Section 1 trap",
		},
		{
			name: "staircase timeouts + the same attack",
			kind: atomicswap.KindSingleLeader,
			attack: func(s *atomicswap.Setup, r *atomicswap.Runner) {
				r.SetBehavior(2, atomicswap.LastMomentRedeemer())
			},
			moral: "each arc outlives its successor by Δ: Bob escapes, all Deal",
		},
	}
	for i, sc := range scenarios {
		if err := runScenario(i, sc); err != nil {
			log.Fatal(err)
		}
	}
}

func runScenario(i int, sc scenario) error {
	kind := sc.kind
	if kind == 0 {
		kind = atomicswap.KindGeneral
	}
	setup, err := atomicswap.NewSetup(atomicswap.ThreeWay(), atomicswap.Config{
		Kind:  kind,
		Delta: 10,
		Start: 100,
		Rand:  rand.New(rand.NewSource(int64(100 + i))),
	})
	if err != nil {
		return err
	}
	r := atomicswap.NewRunner(setup, atomicswap.Options{Seed: int64(i)})
	sc.attack(setup, r)
	res, err := r.Run()
	if err != nil {
		return err
	}
	fmt.Printf("── %s\n", sc.name)
	for _, v := range setup.Spec.D.Vertices() {
		marker := " "
		if res.Report.Of(v) == atomicswap.Underwater {
			marker = "!"
		}
		fmt.Printf("   %s %-6s %v\n", marker, setup.Spec.PartyOf(v), res.Report.Of(v))
	}
	safe := true
	for _, v := range res.Conforming {
		if res.Report.Of(v) == atomicswap.Underwater {
			safe = false
		}
	}
	fmt.Printf("   conforming parties safe: %v — %s\n\n", safe, sc.moral)
	return nil
}
