// Quickstart: the paper's motivating three-way swap (Figures 1 and 2).
// Alice trades alt-coins to Bob, Bob trades bitcoins to Carol, and Carol
// signs her Cadillac's title over to Alice — atomically, although no one
// trusts anyone.
package main

import (
	"fmt"
	"log"
	"math/rand"

	atomicswap "github.com/go-atomicswap/atomicswap"
)

func main() {
	// The swap digraph: a 3-cycle. Alice is the natural single leader
	// (she alone breaks every cycle), chosen automatically.
	d := atomicswap.ThreeWay()

	setup, err := atomicswap.NewSetup(d, atomicswap.Config{
		Delta: 10,
		Start: 100,
		Rand:  rand.New(rand.NewSource(2018)), // deterministic demo
		Assets: []atomicswap.ArcAsset{
			{Chain: "altcoin", Asset: "alt-100", Amount: 100},
			{Chain: "bitcoin", Asset: "btc-1", Amount: 1},
			{Chain: "titles", Asset: "cadillac", Amount: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := setup.Spec
	fmt.Printf("swap: %s\n", spec.D)
	fmt.Printf("leader(s): %v   Δ=%d ticks   diam(D)=%d   everything settles by T+%dΔ\n\n",
		spec.Leaders, spec.Delta, spec.DiamBound, 2*spec.DiamBound)

	res, err := atomicswap.NewRunner(setup, atomicswap.Options{Seed: 2018}).Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("event trace (publish+confirm ≤ Δ; deploys forward, secrets backward):")
	fmt.Print(res.Log.Render())

	fmt.Println("\noutcomes:")
	for _, v := range spec.D.Vertices() {
		fmt.Printf("  %-6s %v\n", spec.PartyOf(v), res.Report.Of(v))
	}
	fmt.Printf("\nall transfers happened atomically: %v\n", res.Report.AllDeal())
	fmt.Printf("on-chain storage: %d bytes across %d chains; %s\n",
		res.StorageBytes, spec.D.NumArcs(), res.Counters.String())
}
