// Single-leader swaps (Section 4.6, Figure 6 left): when one vertex
// breaks every cycle, hashkeys and signatures are unnecessary — classic
// HTLCs with the timeout staircase (diam + D(v, leader) + 1)·Δ suffice.
// This example runs a "flower" of three barter cycles sharing one broker.
package main

import (
	"fmt"
	"log"
	"math/rand"

	atomicswap "github.com/go-atomicswap/atomicswap"
)

func main() {
	// Three petal cycles of two traders each, all passing through the
	// broker L: a classic over-the-counter desk clearing three rings at
	// once.
	d := atomicswap.Flower(3, 2)
	center, _ := d.VertexByName("L")

	setup, err := atomicswap.NewSetup(d, atomicswap.Config{
		Kind:    atomicswap.KindSingleLeader,
		Leaders: []atomicswap.Vertex{center},
		Delta:   10,
		Start:   100,
		Rand:    rand.New(rand.NewSource(31)),
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := setup.Spec

	fmt.Printf("digraph: %s\n", d)
	fmt.Printf("single leader %q is a feedback vertex set — no signatures needed\n\n", d.Name(center))

	fmt.Println("timeout staircase (each arc outlives its successor by ≥ Δ):")
	for _, arc := range d.Arcs() {
		timeout := spec.HTLCTimeout(arc.ID)
		fmt.Printf("  %-10s times out at T+%dΔ\n",
			fmt.Sprintf("%s->%s", d.Name(arc.Head), d.Name(arc.Tail)),
			(timeout-spec.Start)/atomicswap.Ticks(spec.Delta))
	}

	res, err := atomicswap.NewRunner(setup, atomicswap.Options{Seed: 31}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntrace:")
	fmt.Print(res.Log.Render())
	fmt.Printf("\nall Deal: %v (no unlock events — plain secrets, no hashkeys)\n", res.Report.AllDeal())
}
