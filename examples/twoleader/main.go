// Two-leader digraph (Figures 6–8): the complete digraph on three parties
// needs two leaders (no single vertex breaks every cycle), so static
// timeouts cannot work and the general hashkey protocol takes over. This
// example enumerates every hashkey each arc can accept — reproducing
// Figure 7 — and then runs the swap, showing the concurrent contract
// propagation of Figure 8.
package main

import (
	"fmt"
	"log"
	"math/rand"

	atomicswap "github.com/go-atomicswap/atomicswap"
)

func main() {
	d := atomicswap.TwoLeaderTriangle()
	setup, err := atomicswap.NewSetup(d, atomicswap.Config{
		Delta: 10,
		Start: 100,
		Rand:  rand.New(rand.NewSource(7)),
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := setup.Spec

	fmt.Printf("digraph: %s\n", d)
	fmt.Printf("minimum feedback vertex set needs %d leaders: %v (A and B generate secrets)\n\n",
		len(spec.Leaders), spec.Leaders)

	// Figure 7: the hashkeys each arc accepts — one per simple path from
	// the arc's counterparty to each leader, with path-length deadlines.
	fmt.Println("hashkey paths per arc (Figure 7); deadline = (diam + |p|)·Δ after start:")
	for _, arc := range d.Arcs() {
		fmt.Printf("  arc %s->%s:\n", d.Name(arc.Head), d.Name(arc.Tail))
		for i, leader := range spec.Leaders {
			for _, p := range d.AllSimplePaths(arc.Tail, leader, 0) {
				fmt.Printf("    s_%s via %v  (|p|=%d, dies at T+%dΔ)\n",
					d.Name(leader), names(d, p), p.Len(), spec.DiamBound+p.Len())
			}
			_ = i
		}
	}

	res, err := atomicswap.NewRunner(setup, atomicswap.Options{Seed: 7}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconcurrent propagation (Figure 8): both leaders deploy at once,")
	fmt.Println("C follows, secrets then flood back along the transpose:")
	fmt.Print(res.Log.Render())
	fmt.Printf("\nall Deal: %v\n", res.Report.AllDeal())
}

func names(d *atomicswap.Digraph, p atomicswap.Path) []string {
	out := make([]string, len(p))
	for i, v := range p {
		out[i] = d.Name(v)
	}
	return out
}
