// Fault attribution and bond slashing — the future work sketched in the
// paper's Section 5, implemented: "one could require parties to post
// bonds, and following a failed swap examine the blockchains to determine
// who was at fault (by failing to execute an enabled transition)".
//
// Three swaps run: a clean one, one where the leader goes silent, and one
// where a follower crashes mid-protocol. After each, an auditor with
// access only to public chain state names the culprit, and the bond pool
// is settled accordingly.
package main

import (
	"fmt"
	"log"
	"math/rand"

	atomicswap "github.com/go-atomicswap/atomicswap"
	"github.com/go-atomicswap/atomicswap/internal/vtime"
)

const bond = 1_000 // each party's deposit

func main() {
	scenarios := []struct {
		name string
		rig  func(*atomicswap.Setup, *atomicswap.Runner)
	}{
		{
			name: "everyone conforms",
			rig:  func(*atomicswap.Setup, *atomicswap.Runner) {},
		},
		{
			name: "the leader never reveals (griefing)",
			rig: func(s *atomicswap.Setup, r *atomicswap.Runner) {
				idx, _ := s.Spec.LeaderIndex(0)
				r.SetBehavior(0, atomicswap.SilentLeader(idx))
			},
		},
		{
			name: "Carol crashes mid Phase Two",
			rig: func(s *atomicswap.Setup, r *atomicswap.Runner) {
				r.SetBehavior(2, atomicswap.HaltAt(atomicswap.NewConforming(), vtime.Ticks(125)))
			},
		},
	}
	for i, sc := range scenarios {
		if err := runScenario(i, sc.name, sc.rig); err != nil {
			log.Fatal(err)
		}
	}
}

func runScenario(i int, name string, rig func(*atomicswap.Setup, *atomicswap.Runner)) error {
	setup, err := atomicswap.NewSetup(atomicswap.ThreeWay(), atomicswap.Config{
		Delta: 10, Start: 100, Rand: rand.New(rand.NewSource(int64(40 + i))),
	})
	if err != nil {
		return err
	}
	r := atomicswap.NewRunner(setup, atomicswap.Options{Seed: int64(i)})
	rig(setup, r)
	res, err := r.Run()
	if err != nil {
		return err
	}
	fmt.Printf("── %s (all Deal: %v)\n", name, res.Report.AllDeal())

	faults := atomicswap.Audit(setup.Spec, res)
	if len(faults) == 0 {
		fmt.Println("   audit: clean — every enabled transition was executed")
	}
	for _, f := range faults {
		fmt.Printf("   audit: %s\n", f)
	}

	settlement := atomicswap.Settle(setup.Spec, faults, bond)
	for _, v := range setup.Spec.D.Vertices() {
		p := setup.Spec.PartyOf(v)
		payout := settlement.Payout[p]
		tag := ""
		switch {
		case payout == 0:
			tag = "  (slashed)"
		case payout > bond:
			tag = "  (compensated from the slashed pool)"
		}
		fmt.Printf("   bond %-6s posted %d, returned %d%s\n", p, bond, payout, tag)
	}
	fmt.Println()
	return nil
}
