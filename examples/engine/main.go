// The clearing engine under load: thousands of offers stream into one
// long-running engine, which matches them into hundreds of swaps and
// executes those concurrently over a handful of shared chains. At the end
// the registry conservation invariant proves no asset was double-spent:
// every deposited asset still exists exactly once, party-owned, with its
// ledger hash chain intact.
//
// The whole service interaction is five lines:
//
//	eng := atomicswap.NewEngine(atomicswap.EngineConfig{Workers: 128})
//	eng.Start()
//	id, _ := eng.Submit(offer)            // × thousands, any goroutine
//	eng.Stop(ctx)                         // drain the book, finish swaps
//	fmt.Println(eng.Report())             // swaps/sec, latency, outcomes
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	atomicswap "github.com/go-atomicswap/atomicswap"
)

// chains is the small shared set of mock blockchains every swap runs over.
var chains = []string{"btc", "eth", "sol", "ada", "dot", "xmr"}

func main() {
	eng := atomicswap.NewEngine(atomicswap.EngineConfig{
		Workers:       128,
		MaxBatch:      2048,
		Tick:          2 * time.Millisecond,
		Delta:         30,
		ClearInterval: 2 * time.Millisecond,
		Seed:          2018,
	})
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}

	// 350 barter rings of three parties each: 1050 offers, 350 swaps.
	const rings = 350
	offers := 0
	for r := 0; r < rings; r++ {
		members := []string{
			fmt.Sprintf("p%d-a", r), fmt.Sprintf("p%d-b", r), fmt.Sprintf("p%d-c", r),
		}
		for i, p := range members {
			offer := atomicswap.Offer{
				Party: atomicswap.PartyID(p),
				Give: []atomicswap.ProposedTransfer{{
					To:     atomicswap.PartyID(members[(i+1)%len(members)]),
					Chain:  chains[(r+i)%len(chains)],
					Asset:  atomicswap.AssetID(fmt.Sprintf("asset-%d-%d", r, i)),
					Amount: uint64(1 + r%97),
				}},
			}
			if _, err := eng.Submit(offer); err != nil {
				log.Fatalf("submit: %v", err)
			}
			offers++
		}
	}
	fmt.Printf("submitted %d offers across %d barter rings on %d shared chains\n",
		offers, rings, len(chains))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := eng.Stop(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}

	rep := eng.Report()
	fmt.Println()
	fmt.Println(rep)

	// The acceptance bar: a real clearing service, not a demo loop.
	if rep.OffersCleared < 1000 {
		log.Fatalf("FAIL: cleared %d offers, want >= 1000", rep.OffersCleared)
	}
	if rep.PeakConcurrent < 100 {
		log.Fatalf("FAIL: peak concurrency %d, want >= 100", rep.PeakConcurrent)
	}
	// Zero double-spends, by construction and by audit: every minted
	// asset exists exactly once, party-owned, ledgers intact.
	if err := eng.VerifyConservation(); err != nil {
		log.Fatalf("FAIL: conservation: %v", err)
	}
	if n := eng.Registry().Reservations(); n != 0 {
		log.Fatalf("FAIL: %d reservations leaked", n)
	}
	fmt.Printf("\nOK: %d offers cleared into %d swaps (peak %d concurrent), "+
		"%.1f swaps/sec, conservation verified on %d chains\n",
		rep.OffersCleared, rep.SwapsFinished, rep.PeakConcurrent,
		rep.SwapsPerSec, len(eng.Registry().Names()))
}
