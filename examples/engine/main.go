// The clearing engine under load: thousands of offers stream into one
// long-running engine, which matches them into hundreds of swaps and
// executes those concurrently over a handful of shared chains. At the end
// the registry conservation invariant proves no asset was double-spent:
// every deposited asset still exists exactly once, party-owned, with its
// ledger hash chain intact.
//
// The whole service interaction is five lines:
//
//	eng := atomicswap.NewEngine(atomicswap.EngineConfig{Workers: 128})
//	eng.Start()
//	id, _ := eng.Submit(offer)            // × thousands, any goroutine
//	eng.Stop(ctx)                         // drain the book, finish swaps
//	fmt.Println(eng.Report())             // swaps/sec, latency, outcomes
//
// The second act is the open-loop harness: the same engine type fed by a
// ramping arrival process instead of an up-front book, reporting
// submit-to-settle latency percentiles as offered load climbs through
// the engine's capacity.
//
// The third act is the deterministic scenario harness: the same open-
// loop stream with deviating parties injected — silent leaders, crash
// faults, stalled unlocks — run twice from one seed. The two runs must
// produce byte-identical digests (Herlihy's safety invariant checked in
// both): every adversarial experiment the engine runs is replayable.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	atomicswap "github.com/go-atomicswap/atomicswap"
)

// chains is the small shared set of mock blockchains every swap runs over.
var chains = []string{"btc", "eth", "sol", "ada", "dot", "xmr"}

func main() {
	eng := atomicswap.NewEngine(atomicswap.EngineConfig{
		Workers:       128,
		MaxBatch:      2048,
		Tick:          2 * time.Millisecond,
		Delta:         30,
		ClearInterval: 2 * time.Millisecond,
		Seed:          2018,
	})
	if err := eng.Start(); err != nil {
		log.Fatal(err)
	}

	// 350 barter rings of three parties each: 1050 offers, 350 swaps.
	const rings = 350
	offers := 0
	for r := 0; r < rings; r++ {
		members := []string{
			fmt.Sprintf("p%d-a", r), fmt.Sprintf("p%d-b", r), fmt.Sprintf("p%d-c", r),
		}
		for i, p := range members {
			offer := atomicswap.Offer{
				Party: atomicswap.PartyID(p),
				Give: []atomicswap.ProposedTransfer{{
					To:     atomicswap.PartyID(members[(i+1)%len(members)]),
					Chain:  chains[(r+i)%len(chains)],
					Asset:  atomicswap.AssetID(fmt.Sprintf("asset-%d-%d", r, i)),
					Amount: uint64(1 + r%97),
				}},
			}
			if _, err := eng.Submit(offer); err != nil {
				log.Fatalf("submit: %v", err)
			}
			offers++
		}
	}
	fmt.Printf("submitted %d offers across %d barter rings on %d shared chains\n",
		offers, rings, len(chains))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := eng.Stop(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}

	rep := eng.Report()
	fmt.Println()
	fmt.Println(rep)

	// The acceptance bar: a real clearing service, not a demo loop.
	if rep.OffersCleared < 1000 {
		log.Fatalf("FAIL: cleared %d offers, want >= 1000", rep.OffersCleared)
	}
	if rep.PeakConcurrent < 100 {
		log.Fatalf("FAIL: peak concurrency %d, want >= 100", rep.PeakConcurrent)
	}
	// Zero double-spends, by construction and by audit: every minted
	// asset exists exactly once, party-owned, ledgers intact.
	if err := eng.VerifyConservation(); err != nil {
		log.Fatalf("FAIL: conservation: %v", err)
	}
	if n := eng.Registry().Reservations(); n != 0 {
		log.Fatalf("FAIL: %d reservations leaked", n)
	}
	fmt.Printf("\nOK: %d offers cleared into %d swaps (peak %d concurrent), "+
		"%.1f swaps/sec, conservation verified on %d chains\n",
		rep.OffersCleared, rep.SwapsFinished, rep.PeakConcurrent,
		rep.SwapsPerSec, len(eng.Registry().Names()))

	// Act two: open-loop streaming intake. A ramp profile sweeps the
	// offered rate from a fifth of the average to double it — the classic
	// way to watch tail latency respond as load climbs — on a
	// virtual-time engine, so the whole sweep runs in CPU time.
	fmt.Println("\n--- open-loop ramp: 600 offers, 0.2x -> 2x of 4000 offers/sec ---")
	open, err := atomicswap.RunOpenLoad(
		atomicswap.EngineConfig{
			Workers:       64,
			MaxBatch:      2048,
			Tick:          time.Millisecond,
			Delta:         30,
			ClearInterval: time.Millisecond,
			Seed:          2019,
			Virtual:       true,
		},
		atomicswap.OpenLoadConfig{
			Offers:    600,
			Rate:      4000,
			Process:   atomicswap.RampArrivals{From: 0.2, To: 2},
			PartyPool: 64,
			Seed:      7,
		},
	)
	if err != nil {
		log.Fatalf("open-loop ramp: %v", err)
	}
	fmt.Printf("intake: %d offered, %d submitted, %d shed over ticks [%d, %d] (%s)\n",
		open.Load.Offered, open.Load.Submitted, open.Load.Shed,
		open.Load.FirstTick, open.Load.LastTick, open.Profile)
	fmt.Printf("latency: p50 %.3fms, p95 %.3fms, p99 %.3fms, max %.3fms\n",
		open.P50LatencyMs, open.P95LatencyMs, open.P99LatencyMs, open.MaxLatencyMs)
	// Sub-millisecond virtual-time settles must still report non-zero
	// percentiles — the truncation bug this demo would have masked.
	if open.P50LatencyMs <= 0 || open.P99LatencyMs <= 0 {
		log.Fatalf("FAIL: zeroed latency percentiles: p50=%v p99=%v",
			open.P50LatencyMs, open.P99LatencyMs)
	}
	fmt.Printf("\nOK: open-loop ramp cleared %d offers into %d swaps at non-zero tail latency\n",
		open.OffersCleared, open.SwapsFinished)

	// Act three: a seed-replayable adversarial swarm. A quarter of the
	// parties deviate — refusing to unlock, crashing mid-protocol,
	// stalling past their timelocks, never deploying — while offers
	// stream in open-loop. Run it twice: the digests must match byte for
	// byte, and in both runs no conforming party may end Underwater.
	fmt.Println("\n--- deterministic adversarial scenario: run twice, diff the digests ---")
	sc := atomicswap.Scenario{
		Name:    "example-swarm",
		Seed:    2020,
		Offers:  60,
		Rate:    3000,
		Profile: "poisson",
		Deviations: []atomicswap.ScenarioDeviation{
			{Strategy: "silent-leader", Rate: 0.10},
			{Strategy: "crash", Rate: 0.08},
			{Strategy: "stall-past-timelock", Rate: 0.07},
			{Strategy: "withhold-publish", Rate: 0.05},
		},
	}
	first, err := atomicswap.RunScenario(sc)
	if err != nil {
		log.Fatalf("scenario: %v", err)
	}
	second, err := atomicswap.RunScenario(sc)
	if err != nil {
		log.Fatalf("scenario replay: %v", err)
	}
	d := first.Digest
	fmt.Printf("intake: %d offered over ticks [%d, %d] (%s)\n",
		d.Offered, d.FirstTick, d.LastTick, d.Profile)
	fmt.Printf("swaps:  %d finished, outcomes %v\n", d.SwapsFinished, d.Outcomes)
	fmt.Printf("deviations injected: %v (%d orders sabotaged)\n", d.Deviations, d.OrdersSabotaged)
	fmt.Printf("digest: %s\n", d.Hash())
	if len(first.Violations) != 0 {
		log.Fatalf("FAIL: safety violations: %+v", first.Violations)
	}
	if d.Safety != "ok" || d.Conservation != "ok" {
		log.Fatalf("FAIL: safety=%q conservation=%q", d.Safety, d.Conservation)
	}
	if first.Digest.JSON() != second.Digest.JSON() {
		log.Fatalf("FAIL: replay diverged:\n%s\nvs\n%s",
			first.Digest.JSON(), second.Digest.JSON())
	}
	if len(d.Deviations) < 3 {
		log.Fatalf("FAIL: only %d deviation strategies landed: %v", len(d.Deviations), d.Deviations)
	}
	fmt.Printf("\nOK: adversarial swarm replayed byte-identically; "+
		"every conforming party acceptable across %d orders\n", len(d.Orders))
}
