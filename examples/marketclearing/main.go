// Market clearing (Section 4.2): five parties submit barter offers to an
// untrusted clearing service, which assembles the swap digraph, picks the
// leaders, and publishes the plan. Each party independently verifies the
// plan against its own offer before the atomic swap runs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	atomicswap "github.com/go-atomicswap/atomicswap"
)

func main() {
	// A barter ring: collectibles moving between five traders, one of
	// whom (nina) gives two assets away.
	offers := []atomicswap.Offer{
		{Party: "maya", Give: []atomicswap.ProposedTransfer{
			{To: "nina", Chain: "cardchain", Asset: "rookie-card", Amount: 1},
		}},
		{Party: "nina", Give: []atomicswap.ProposedTransfer{
			{To: "omar", Chain: "coinchain", Asset: "gold-coin", Amount: 1},
			{To: "maya", Chain: "stampchain", Asset: "blue-stamp", Amount: 1},
		}},
		{Party: "omar", Give: []atomicswap.ProposedTransfer{
			{To: "pia", Chain: "bookchain", Asset: "first-edition", Amount: 1},
		}},
		{Party: "pia", Give: []atomicswap.ProposedTransfer{
			{To: "quinn", Chain: "vinylchain", Asset: "test-pressing", Amount: 1},
		}},
		{Party: "quinn", Give: []atomicswap.ProposedTransfer{
			{To: "nina", Chain: "mapchain", Asset: "sea-chart", Amount: 1},
		}},
	}

	setup, err := atomicswap.Clear(offers, atomicswap.Config{
		Rand: rand.New(rand.NewSource(55)),
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := setup.Spec
	fmt.Printf("cleared digraph: %s\n", spec.D)
	fmt.Printf("leaders chosen by the service: %v\n\n", spec.Leaders)

	// The service is untrusted: every party checks the published plan
	// against what it actually offered.
	for _, o := range offers {
		if err := atomicswap.VerifyPlan(spec, o); err != nil {
			log.Fatalf("%s rejects the plan: %v", o.Party, err)
		}
		fmt.Printf("%-6s verified the plan against their offer ✓\n", o.Party)
	}

	res, err := atomicswap.NewRunner(setup, atomicswap.Options{Seed: 55}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noutcomes:")
	for _, v := range spec.D.Vertices() {
		fmt.Printf("  %-6s %v\n", spec.PartyOf(v), res.Report.Of(v))
	}
	fmt.Printf("\nall five traders settled atomically: %v\n", res.Report.AllDeal())
}
